/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The whole platform model is event-driven: components schedule
 * callbacks at future simulated times and the queue executes them in
 * timestamp order. Events are cancellable, which the SpecFaaS
 * controller relies on to squash in-flight speculative work (pending
 * storage completions, compute completions, launch timers).
 */

#ifndef SPECFAAS_SIM_EVENT_QUEUE_HH
#define SPECFAAS_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace specfaas {

/**
 * Time-ordered queue of cancellable callbacks.
 *
 * Events scheduled for the same tick run in scheduling (FIFO) order,
 * which keeps simulations deterministic.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run @p delay ticks from now.
     * @param delay non-negative delay
     * @return id usable with cancel()
     */
    EventId schedule(Tick delay, Callback cb);

    /** Schedule @p cb at absolute tick @p when (>= now). */
    EventId scheduleAt(Tick when, Callback cb);

    /**
     * Schedule a daemon event: it fires in timestamp order like any
     * other event, but does not keep run() alive — when only daemon
     * events remain pending, run() returns and leaves them queued.
     * Periodic background work (gauge samplers) self-reschedules with
     * this so simulations still terminate when real work drains.
     */
    EventId scheduleDaemon(Tick delay, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or
     * already-cancelled event is a no-op.
     * @return true if the event was pending and is now cancelled
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const;

    /**
     * Run the earliest pending event.
     * @return false when the queue is empty
     */
    bool runOne();

    /** Run until the queue drains. */
    void run();

    /**
     * Run events with timestamp <= @p until, then set now() to
     * @p until even if no event fired exactly there.
     */
    void runUntil(Tick until);

    /** Number of pending (uncancelled) events, daemons included. */
    std::size_t pendingCount() const
    {
        return queue_.size() - cancelledPending_;
    }

    /** Pending non-daemon events (what keeps run() alive). */
    std::size_t pendingWorkCount() const
    {
        return queue_.size() - cancelledPending_ - daemonIds_.size();
    }

    /** Total number of events executed so far. */
    std::uint64_t executedCount() const { return executed_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq; // FIFO tie-break for equal timestamps
        EventId id;
        // Callback lives outside the priority queue Entry to keep
        // heap operations cheap? No: kept inline; std::function moves
        // are fine for the simulated workloads.
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * Lifecycle of one scheduled id. Stored densely (ids are
     * monotonic from 1), so schedule/cancel/fire cost a byte access
     * instead of hash-set operations on the hot path. One byte per
     * event ever scheduled, bounded by the simulation's lifetime.
     * Only Pending ids are cancellable: accepting an already-fired
     * (or already-cancelled) id would grow cancelledPending_ with no
     * matching heap entry and underflow pendingCount().
     */
    enum class State : std::uint8_t { Pending, Cancelled, Done };

    EventId scheduleEntry(Tick when, Callback cb, bool daemon);

    /** Remove @p id from daemonIds_ if present. */
    bool dropDaemonId(EventId id);

    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    EventId nextId_ = 1;
    std::uint64_t executed_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    std::vector<State> states_; ///< indexed by id - 1
    std::size_t cancelledPending_ = 0;
    /**
     * Ids of pending daemon events. Daemons are rare (a handful of
     * periodic samplers at most), so a tiny linear-scanned list keeps
     * the per-event cost of the common non-daemon path at one
     * empty()-check instead of a per-id side table.
     */
    std::vector<EventId> daemonIds_;
};

} // namespace specfaas

#endif // SPECFAAS_SIM_EVENT_QUEUE_HH
