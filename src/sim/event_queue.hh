/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The whole platform model is event-driven: components schedule
 * callbacks at future simulated times and the queue executes them in
 * timestamp order. Events are cancellable, which the SpecFaaS
 * controller relies on to squash in-flight speculative work (pending
 * storage completions, compute completions, launch timers).
 *
 * Hot-path layout: the queue is two lanes. Events due within the
 * next ~16 ms of simulated time land in a calendar wheel — one FIFO
 * bucket per tick, found again by a bitmap scan — so the common
 * short-latency traffic (RPC hops, storage completions, launch
 * timers) pays O(1) appends instead of binary-heap percolation.
 * Far-future events (long compute bursts, container creation,
 * retry backoffs, samplers) go to an overflow binary heap of 24-byte
 * POD items {when, id, slot}. Every wheel event precedes no overflow
 * event incorrectly: the two lane minima are compared (when, id) at
 * dispatch. Callbacks live in slab-pooled slots (see
 * common/arena.hh) addressed by either lane, and the callback type
 * itself has inline storage (common/inline_function.hh), so
 * scheduling an event touches the general-purpose heap only when a
 * capture exceeds the inline buffer.
 */

#ifndef SPECFAAS_SIM_EVENT_QUEUE_HH
#define SPECFAAS_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "common/inline_function.hh"
#include "common/types.hh"

namespace specfaas::obs {
class Profiler;
}

namespace specfaas {

/**
 * Time-ordered queue of cancellable callbacks.
 *
 * Events scheduled for the same tick run in scheduling (FIFO) order,
 * which keeps simulations deterministic.
 */
class EventQueue
{
  public:
    using Callback = InlineFunction<void(), 112>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb to run @p delay ticks from now.
     * @param delay non-negative delay
     * @return id usable with cancel()
     */
    EventId schedule(Tick delay, Callback cb);

    /** Schedule @p cb at absolute tick @p when (>= now). */
    EventId scheduleAt(Tick when, Callback cb);

    /**
     * Schedule a daemon event: it fires in timestamp order like any
     * other event, but does not keep run() alive — when only daemon
     * events remain pending, run() returns and leaves them queued.
     * Periodic background work (gauge samplers) self-reschedules with
     * this so simulations still terminate when real work drains.
     */
    EventId scheduleDaemon(Tick delay, Callback cb);

    /**
     * Cancel a pending event. Cancelling an already-fired or
     * already-cancelled event is a no-op.
     * @return true if the event was pending and is now cancelled
     */
    bool cancel(EventId id);

    /** True when no runnable events remain. */
    bool empty() const;

    /**
     * Run the earliest pending event.
     * @return false when the queue is empty
     */
    bool runOne();

    /** Run until the queue drains. */
    void run();

    /**
     * Run events with timestamp <= @p until, then set now() to
     * @p until even if no event fired exactly there.
     */
    void runUntil(Tick until);

    /** Number of pending (uncancelled) events, daemons included. */
    std::size_t pendingCount() const
    {
        return wheelItems_ + heap_.size() - cancelledPending_;
    }

    /** Pending non-daemon events (what keeps run() alive). */
    std::size_t pendingWorkCount() const
    {
        return wheelItems_ + heap_.size() - cancelledPending_ -
               daemonIds_.size();
    }

    /** Total number of events executed so far. */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Attach the owning simulation's zone profiler (Simulation's
     * constructor does this). Every dispatched callback then runs
     * under the "sim/dispatch" zone, whose deterministic count is the
     * simulated ticks the clock advanced. Null (the default for a
     * bare EventQueue) and a disabled profiler both cost one
     * predictable branch per event.
     */
    void setProfiler(obs::Profiler* profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Width of the per-id state window (testing/diagnostics). Stays
     * proportional to the span of ids with undecided outcomes, not to
     * the total number of events ever scheduled.
     */
    std::size_t stateWindowSize() const { return states_.size(); }

  private:
    /** POD heap item; the callback lives in the pooled slot. */
    struct Item
    {
        Tick when;
        EventId id; ///< monotonic, doubles as the FIFO tie-break
        Callback* slot;
    };

    /**
     * @{ Calendar-wheel lane for events due within kWheelSpan ticks.
     *
     * One bucket per tick, kept as an intrusive FIFO list of pooled
     * nodes: bucket occupants share their timestamp, so draining head
     * first is FIFO-by-id by construction (ids are handed out
     * monotonically and appends are chronological). A node is
     * unlinked the moment it is consumed — fired or reclaimed after a
     * cancel — so a bucket never retains resolved entries. Every live
     * wheel event satisfies now <= when < now + kWheelSpan, so
     * `when & kWheelMask` is collision-free and the wheel needs no
     * migration: anything scheduled further out goes to the overflow
     * heap and is dispatched from there, with the two lane minima
     * compared (when, id) at pop.
     */
    static constexpr std::size_t kWheelBits = 14; ///< 16384 ticks, ~16 ms
    static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
    static constexpr Tick kWheelSpan = static_cast<Tick>(kWheelSize);
    static constexpr std::size_t kWheelMask = kWheelSize - 1;
    static constexpr std::size_t kWheelWords = kWheelSize / 64;

    /** Bucket list node; the shared timestamp lives in the bucket. */
    struct WheelNode
    {
        EventId id;
        Callback* slot;
        WheelNode* next;
    };

    struct Bucket
    {
        WheelNode* head = nullptr;
        WheelNode* tail = nullptr;
    };

    std::size_t bucketOf(Tick when) const
    {
        return static_cast<std::size_t>(when) & kWheelMask;
    }

    /**
     * Earliest live wheel timestamp, unlinking and reclaiming
     * cancelled entries met along the way. Returns false when the
     * wheel is empty. On true, @p when is the timestamp and
     * curBucket_'s head is the next entry to fire. The result is
     * cached (wheelMin_/wheelMinValid_) so repeated peeks between
     * mutations cost a branch, not a bitmap scan: scheduling an
     * earlier event lowers the cache, popping the last entry of the
     * minimum bucket invalidates it.
     */
    bool wheelPeek(Tick& when);
    /** Unlink and return the head node of buckets_[curBucket_]. */
    WheelNode* wheelPopHead();
    /** @} */

    /**
     * Lifecycle of one scheduled id. Ids are monotonic from 1 and
     * stored densely in a window starting at baseId_: every id below
     * the window is resolved (Done), so schedule/cancel/fire cost a
     * byte access instead of hash-set operations on the hot path.
     * Once the resolved prefix of the window grows past half its
     * width it is compacted away (epoch base + dense tail), keeping
     * memory proportional to the in-flight id span instead of one
     * byte per event ever scheduled. Only Pending ids are
     * cancellable: accepting an already-fired (or already-cancelled)
     * id would grow cancelledPending_ with no matching heap entry and
     * underflow pendingCount().
     */
    enum class State : std::uint8_t { Pending, Cancelled, Done };

    EventId scheduleEntry(Tick when, Callback cb, bool daemon);

    /** Remove @p id from daemonIds_ if present. */
    bool dropDaemonId(EventId id);

    State& stateOf(EventId id) { return states_[id - baseId_]; }

    static bool
    earlier(const Item& a, const Item& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.id < b.id;
    }

    void heapPush(Item item);
    void heapPop();
    void maybeCompact();
    /** Drop cancelled overflow-heap tops, reclaiming their slots. */
    void heapSkipCancelled();
    /** Fire one callback: advance the clock, account, dispatch. */
    void fire(Tick when, EventId id, Callback* slot);

    Tick now_ = 0;
    EventId nextId_ = 1;
    EventId baseId_ = 1; ///< id of states_[0]; all lower ids are Done
    std::uint64_t executed_ = 0;

    /** @{ Wheel lane state. */
    std::array<Bucket, kWheelSize> buckets_;
    /** One bit per bucket: set while the bucket has queued entries. */
    std::array<std::uint64_t, kWheelWords> occupancy_{};
    /** Queued wheel entries, cancelled ones included. */
    std::size_t wheelItems_ = 0;
    /** Bucket wheelPeek resolved to (valid only right after it). */
    std::size_t curBucket_ = 0;
    /**
     * Cached earliest wheel timestamp. Valid means: no queued wheel
     * entry has a timestamp below wheelMin_, and bucketOf(wheelMin_)
     * is non-empty (its occupants may all be cancelled — wheelPeek
     * still validates the head's state before trusting the cache).
     */
    Tick wheelMin_ = 0;
    bool wheelMinValid_ = false;
    /** @} */

    /** Overflow lane: events due >= kWheelSpan ticks out. */
    std::vector<Item> heap_;
    std::vector<State> states_; ///< indexed by id - baseId_
    std::size_t donePrefix_ = 0; ///< known-resolved prefix of states_
    std::size_t cancelledPending_ = 0;
    /**
     * Ids of pending daemon events. Daemons are rare (a handful of
     * periodic samplers at most), so a tiny linear-scanned list keeps
     * the per-event cost of the common non-daemon path at one
     * empty()-check instead of a per-id side table.
     */
    std::vector<EventId> daemonIds_;
    SlabPool<Callback, 64> pool_;
    SlabPool<WheelNode, 64> nodePool_;
    obs::Profiler* profiler_ = nullptr;
};

} // namespace specfaas

#endif // SPECFAAS_SIM_EVENT_QUEUE_HH
