#include "event_queue.hh"

#include <utility>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace specfaas {

EventId
EventQueue::schedule(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative delay %lld",
                    static_cast<long long>(delay));
    return scheduleEntry(now_ + delay, std::move(cb), false);
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    return scheduleEntry(when, std::move(cb), false);
}

EventId
EventQueue::scheduleDaemon(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative daemon delay %lld",
                    static_cast<long long>(delay));
    return scheduleEntry(now_ + delay, std::move(cb), true);
}

EventId
EventQueue::scheduleEntry(Tick when, Callback cb, bool daemon)
{
    SPECFAAS_ASSERT(when >= now_, "scheduling in the past (%lld < %lld)",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    const EventId id = nextId_++;
    Callback* slot = pool_.create(std::move(cb));
    heapPush(Item{when, id, slot});
    states_.push_back(State::Pending);
    maybeCompact();
    if (daemon)
        daemonIds_.push_back(id);
    return id;
}

void
EventQueue::heapPush(Item item)
{
    heap_.push_back(item);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::heapPop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
        const std::size_t left = 2 * i + 1;
        std::size_t smallest = i;
        if (left < n && earlier(heap_[left], heap_[smallest]))
            smallest = left;
        if (left + 1 < n && earlier(heap_[left + 1], heap_[smallest]))
            smallest = left + 1;
        if (smallest == i)
            break;
        std::swap(heap_[i], heap_[smallest]);
        i = smallest;
    }
}

void
EventQueue::maybeCompact()
{
    while (donePrefix_ < states_.size() &&
           states_[donePrefix_] == State::Done)
        ++donePrefix_;
    // Compact only when the resolved prefix dominates the window, so
    // the erase (which shifts the tail down) is amortized O(1) per
    // scheduled event.
    constexpr std::size_t kCompactMin = 1024;
    if (donePrefix_ >= kCompactMin &&
        donePrefix_ * 2 >= states_.size()) {
        states_.erase(states_.begin(),
                      states_.begin() +
                          static_cast<std::ptrdiff_t>(donePrefix_));
        baseId_ += donePrefix_;
        donePrefix_ = 0;
    }
}

bool
EventQueue::dropDaemonId(EventId id)
{
    for (std::size_t i = 0; i < daemonIds_.size(); ++i) {
        if (daemonIds_[i] == id) {
            daemonIds_[i] = daemonIds_.back();
            daemonIds_.pop_back();
            return true;
        }
    }
    return false;
}

bool
EventQueue::cancel(EventId id)
{
    // Ids below the window base are resolved; id 0 is never issued
    // (baseId_ starts at 1).
    if (id < baseId_ || id >= nextId_ || stateOf(id) != State::Pending)
        return false;
    // Lazily cancelled: the heap item stays queued and is skipped
    // (and its slot reclaimed) when popped.
    stateOf(id) = State::Cancelled;
    ++cancelledPending_;
    if (!daemonIds_.empty())
        dropDaemonId(id);
    return true;
}

bool
EventQueue::empty() const
{
    return heap_.size() == cancelledPending_;
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        const Item top = heap_.front();
        heapPop();

        if (stateOf(top.id) == State::Cancelled) {
            stateOf(top.id) = State::Done;
            --cancelledPending_;
            pool_.destroy(top.slot);
            continue;
        }

        const Tick advanced = top.when - now_;
        now_ = top.when;
        stateOf(top.id) = State::Done;
        if (!daemonIds_.empty())
            dropDaemonId(top.id);
        ++executed_;
        // Move the callback out and recycle the slot before invoking,
        // so events scheduled from inside the callback can reuse it.
        Callback cb = std::move(*top.slot);
        pool_.destroy(top.slot);
        OBS_ZONE_SCOPE(zone, profiler_, "sim/dispatch");
        zone.addCount(static_cast<std::uint64_t>(advanced));
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run()
{
    // Stop once only daemon events remain; a self-rescheduling
    // sampler would otherwise keep the loop alive forever. Remaining
    // daemons stay queued and fire if more work arrives later.
    while (pendingWorkCount() > 0 && runOne()) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    SPECFAAS_ASSERT(until >= now_, "runUntil into the past");
    while (!heap_.empty()) {
        const Item top = heap_.front();
        if (stateOf(top.id) == State::Cancelled) {
            stateOf(top.id) = State::Done;
            --cancelledPending_;
            pool_.destroy(top.slot);
            heapPop();
            continue;
        }
        if (top.when > until)
            break;
        runOne();
    }
    now_ = until;
}

} // namespace specfaas
