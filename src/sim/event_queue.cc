#include "event_queue.hh"

#include <bit>
#include <utility>

#include "common/logging.hh"
#include "obs/profiler.hh"

namespace specfaas {

EventId
EventQueue::schedule(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative delay %lld",
                    static_cast<long long>(delay));
    return scheduleEntry(now_ + delay, std::move(cb), false);
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    return scheduleEntry(when, std::move(cb), false);
}

EventId
EventQueue::scheduleDaemon(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative daemon delay %lld",
                    static_cast<long long>(delay));
    return scheduleEntry(now_ + delay, std::move(cb), true);
}

EventId
EventQueue::scheduleEntry(Tick when, Callback cb, bool daemon)
{
    SPECFAAS_ASSERT(when >= now_, "scheduling in the past (%lld < %lld)",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    const EventId id = nextId_++;
    Callback* slot = pool_.create(std::move(cb));
    if (when - now_ < kWheelSpan) {
        const std::size_t i = bucketOf(when);
        WheelNode* node = nodePool_.create(WheelNode{id, slot, nullptr});
        Bucket& b = buckets_[i];
        if (b.tail == nullptr)
            b.head = node;
        else
            b.tail->next = node;
        b.tail = node;
        occupancy_[i >> 6] |= std::uint64_t{1} << (i & 63);
        ++wheelItems_;
        // An invalid cache means "minimum unknown", not "wheel
        // empty": it may only be seeded when this is the sole entry,
        // and otherwise only lowered — never raised.
        if (wheelItems_ == 1 || (wheelMinValid_ && when < wheelMin_)) {
            wheelMin_ = when;
            wheelMinValid_ = true;
        }
    } else {
        heapPush(Item{when, id, slot});
    }
    states_.push_back(State::Pending);
    maybeCompact();
    if (daemon)
        daemonIds_.push_back(id);
    return id;
}

bool
EventQueue::wheelPeek(Tick& when)
{
    if (wheelItems_ == 0) {
        wheelMinValid_ = false;
        return false;
    }
    const std::size_t start = bucketOf(now_);
    std::size_t i = start;
    // Resume from the cached minimum: every bucket between now_ and
    // it is known empty. A cache that fell behind now_ can only be
    // pointing at cancelled leftovers (pending events are never
    // overtaken by the clock) — rescan from now_ instead, since
    // resuming there would visit buckets out of timestamp order.
    if (wheelMinValid_ && wheelMin_ >= now_)
        i = bucketOf(wheelMin_);
    for (;;) {
        Bucket& b = buckets_[i];
        // Unlink cancelled heads eagerly so the bucket can be
        // released and the scan keeps jumping word-sized gaps. A
        // cancelled entry whose time already passed sits ahead of any
        // live occupant of its bucket (appends are chronological), so
        // reclaiming from the head never skips a live entry.
        while (b.head != nullptr &&
               stateOf(b.head->id) == State::Cancelled) {
            WheelNode* node = b.head;
            stateOf(node->id) = State::Done;
            --cancelledPending_;
            pool_.destroy(node->slot);
            b.head = node->next;
            if (b.head == nullptr)
                b.tail = nullptr;
            nodePool_.destroy(node);
            --wheelItems_;
        }
        if (b.head != nullptr) {
            curBucket_ = i;
            when = now_ + static_cast<Tick>((i - start) & kWheelMask);
            wheelMin_ = when;
            wheelMinValid_ = true;
            return true;
        }
        occupancy_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
        if (wheelItems_ == 0) {
            wheelMinValid_ = false;
            return false;
        }
        // Bitmap scan for the next occupied bucket, wrapping once.
        std::size_t word = (i >> 6) & (kWheelWords - 1);
        std::uint64_t bits =
            occupancy_[word] &
            ~((std::uint64_t{2} << (i & 63)) - 1); // bits above i
        for (;;) {
            if (bits != 0) {
                i = (word << 6) +
                    static_cast<std::size_t>(std::countr_zero(bits));
                break;
            }
            word = (word + 1) & (kWheelWords - 1);
            bits = occupancy_[word];
        }
    }
}

EventQueue::WheelNode*
EventQueue::wheelPopHead()
{
    Bucket& b = buckets_[curBucket_];
    WheelNode* node = b.head;
    b.head = node->next;
    if (b.head == nullptr) {
        b.tail = nullptr; // occupancy bit is cleared by the next scan
        wheelMinValid_ = false;
    }
    --wheelItems_;
    return node;
}

void
EventQueue::heapPush(Item item)
{
    heap_.push_back(item);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::heapPop()
{
    heap_.front() = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    std::size_t i = 0;
    while (true) {
        const std::size_t left = 2 * i + 1;
        std::size_t smallest = i;
        if (left < n && earlier(heap_[left], heap_[smallest]))
            smallest = left;
        if (left + 1 < n && earlier(heap_[left + 1], heap_[smallest]))
            smallest = left + 1;
        if (smallest == i)
            break;
        std::swap(heap_[i], heap_[smallest]);
        i = smallest;
    }
}

void
EventQueue::heapSkipCancelled()
{
    while (!heap_.empty() &&
           stateOf(heap_.front().id) == State::Cancelled) {
        stateOf(heap_.front().id) = State::Done;
        --cancelledPending_;
        pool_.destroy(heap_.front().slot);
        heapPop();
    }
}

void
EventQueue::maybeCompact()
{
    while (donePrefix_ < states_.size() &&
           states_[donePrefix_] == State::Done)
        ++donePrefix_;
    // Compact only when the resolved prefix dominates the window, so
    // the erase (which shifts the tail down) is amortized O(1) per
    // scheduled event.
    constexpr std::size_t kCompactMin = 1024;
    if (donePrefix_ >= kCompactMin &&
        donePrefix_ * 2 >= states_.size()) {
        states_.erase(states_.begin(),
                      states_.begin() +
                          static_cast<std::ptrdiff_t>(donePrefix_));
        baseId_ += donePrefix_;
        donePrefix_ = 0;
    }
}

bool
EventQueue::dropDaemonId(EventId id)
{
    for (std::size_t i = 0; i < daemonIds_.size(); ++i) {
        if (daemonIds_[i] == id) {
            daemonIds_[i] = daemonIds_.back();
            daemonIds_.pop_back();
            return true;
        }
    }
    return false;
}

bool
EventQueue::cancel(EventId id)
{
    // Ids below the window base are resolved; id 0 is never issued
    // (baseId_ starts at 1).
    if (id < baseId_ || id >= nextId_ || stateOf(id) != State::Pending)
        return false;
    // Lazily cancelled: the queued entry stays in its lane and is
    // skipped (and its slot reclaimed) when the lane reaches it.
    stateOf(id) = State::Cancelled;
    ++cancelledPending_;
    if (!daemonIds_.empty())
        dropDaemonId(id);
    return true;
}

bool
EventQueue::empty() const
{
    return wheelItems_ + heap_.size() == cancelledPending_;
}

void
EventQueue::fire(Tick when, EventId id, Callback* slot)
{
    const Tick advanced = when - now_;
    now_ = when;
    stateOf(id) = State::Done;
    if (!daemonIds_.empty())
        dropDaemonId(id);
    ++executed_;
    // Move the callback out and recycle the slot before invoking,
    // so events scheduled from inside the callback can reuse it.
    Callback cb = std::move(*slot);
    pool_.destroy(slot);
    OBS_ZONE_SCOPE(zone, profiler_, "sim/dispatch");
    zone.addCount(static_cast<std::uint64_t>(advanced));
    cb();
}

bool
EventQueue::runOne()
{
    Tick wheelWhen = 0;
    const bool hasWheel = wheelPeek(wheelWhen);
    heapSkipCancelled();
    const bool hasHeap = !heap_.empty();
    if (!hasWheel && !hasHeap)
        return false;

    // The wheel holds the near future and the heap the far future,
    // but both can be populated around the horizon: dispatch the
    // (when, id)-earlier lane minimum.
    bool useWheel = hasWheel;
    if (hasWheel && hasHeap) {
        const Item& top = heap_.front();
        useWheel = wheelWhen != top.when
                       ? wheelWhen < top.when
                       : buckets_[curBucket_].head->id < top.id;
    }

    if (useWheel) {
        WheelNode* node = wheelPopHead();
        const EventId id = node->id;
        Callback* slot = node->slot;
        // Recycle the node before dispatch so events scheduled from
        // inside the callback can reuse it.
        nodePool_.destroy(node);
        fire(wheelWhen, id, slot);
    } else {
        const Item top = heap_.front();
        heapPop();
        fire(top.when, top.id, top.slot);
    }
    return true;
}

void
EventQueue::run()
{
    // Stop once only daemon events remain; a self-rescheduling
    // sampler would otherwise keep the loop alive forever. Remaining
    // daemons stay queued and fire if more work arrives later.
    while (pendingWorkCount() > 0 && runOne()) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    SPECFAAS_ASSERT(until >= now_, "runUntil into the past");
    for (;;) {
        Tick wheelWhen = 0;
        const bool hasWheel = wheelPeek(wheelWhen);
        heapSkipCancelled();
        Tick next = 0;
        bool any = false;
        if (hasWheel) {
            next = wheelWhen;
            any = true;
        }
        if (!heap_.empty() &&
            (!any || heap_.front().when < next)) {
            next = heap_.front().when;
            any = true;
        }
        if (!any || next > until)
            break;
        runOne();
    }
    now_ = until;
}

} // namespace specfaas
