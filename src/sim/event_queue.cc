#include "event_queue.hh"

#include "common/logging.hh"

namespace specfaas {

EventId
EventQueue::schedule(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative delay %lld",
                    static_cast<long long>(delay));
    return scheduleAt(now_ + delay, std::move(cb));
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    SPECFAAS_ASSERT(when >= now_, "scheduling in the past (%lld < %lld)",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    const EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= nextId_)
        return false;
    // Lazily cancelled: the entry stays in the heap and is skipped
    // when popped. The set is pruned as entries surface.
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (inserted)
        ++cancelledPending_;
    return inserted;
}

bool
EventQueue::empty() const
{
    return queue_.size() == cancelledPending_;
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        // const_cast to move the callback out; the entry is popped
        // immediately after, so the heap invariant is unaffected.
        auto& top = const_cast<Entry&>(queue_.top());
        const Tick when = top.when;
        const EventId id = top.id;
        Callback cb = std::move(top.cb);
        queue_.pop();

        auto it = cancelled_.find(id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            --cancelledPending_;
            continue;
        }

        now_ = when;
        ++executed_;
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run()
{
    while (runOne()) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    SPECFAAS_ASSERT(until >= now_, "runUntil into the past");
    while (!queue_.empty()) {
        const auto& top = queue_.top();
        if (cancelled_.count(top.id)) {
            cancelled_.erase(top.id);
            --cancelledPending_;
            queue_.pop();
            continue;
        }
        if (top.when > until)
            break;
        runOne();
    }
    now_ = until;
}

std::size_t
EventQueue::pendingCount() const
{
    return queue_.size() - cancelledPending_;
}

} // namespace specfaas
