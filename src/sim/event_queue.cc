#include "event_queue.hh"

#include "common/logging.hh"

namespace specfaas {

EventId
EventQueue::schedule(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative delay %lld",
                    static_cast<long long>(delay));
    return scheduleEntry(now_ + delay, std::move(cb), false);
}

EventId
EventQueue::scheduleAt(Tick when, Callback cb)
{
    return scheduleEntry(when, std::move(cb), false);
}

EventId
EventQueue::scheduleDaemon(Tick delay, Callback cb)
{
    SPECFAAS_ASSERT(delay >= 0, "negative daemon delay %lld",
                    static_cast<long long>(delay));
    return scheduleEntry(now_ + delay, std::move(cb), true);
}

EventId
EventQueue::scheduleEntry(Tick when, Callback cb, bool daemon)
{
    SPECFAAS_ASSERT(when >= now_, "scheduling in the past (%lld < %lld)",
                    static_cast<long long>(when),
                    static_cast<long long>(now_));
    const EventId id = nextId_++;
    queue_.push(Entry{when, nextSeq_++, id, std::move(cb)});
    states_.push_back(State::Pending);
    if (daemon)
        daemonIds_.push_back(id);
    return id;
}

bool
EventQueue::dropDaemonId(EventId id)
{
    for (std::size_t i = 0; i < daemonIds_.size(); ++i) {
        if (daemonIds_[i] == id) {
            daemonIds_[i] = daemonIds_.back();
            daemonIds_.pop_back();
            return true;
        }
    }
    return false;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= nextId_ ||
        states_[id - 1] != State::Pending)
        return false;
    // Lazily cancelled: the entry stays in the heap and is skipped
    // when popped.
    states_[id - 1] = State::Cancelled;
    ++cancelledPending_;
    if (!daemonIds_.empty())
        dropDaemonId(id);
    return true;
}

bool
EventQueue::empty() const
{
    return queue_.size() == cancelledPending_;
}

bool
EventQueue::runOne()
{
    while (!queue_.empty()) {
        // const_cast to move the callback out; the entry is popped
        // immediately after, so the heap invariant is unaffected.
        auto& top = const_cast<Entry&>(queue_.top());
        const Tick when = top.when;
        const EventId id = top.id;
        Callback cb = std::move(top.cb);
        queue_.pop();

        if (states_[id - 1] == State::Cancelled) {
            states_[id - 1] = State::Done;
            --cancelledPending_;
            continue;
        }

        now_ = when;
        states_[id - 1] = State::Done;
        if (!daemonIds_.empty())
            dropDaemonId(id);
        ++executed_;
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run()
{
    // Stop once only daemon events remain; a self-rescheduling
    // sampler would otherwise keep the loop alive forever. Remaining
    // daemons stay queued and fire if more work arrives later.
    while (pendingWorkCount() > 0 && runOne()) {
    }
}

void
EventQueue::runUntil(Tick until)
{
    SPECFAAS_ASSERT(until >= now_, "runUntil into the past");
    while (!queue_.empty()) {
        const auto& top = queue_.top();
        if (states_[top.id - 1] == State::Cancelled) {
            states_[top.id - 1] = State::Done;
            --cancelledPending_;
            queue_.pop();
            continue;
        }
        if (top.when > until)
            break;
        runOne();
    }
    now_ = until;
}

} // namespace specfaas
