/**
 * @file
 * Aggregation of invocation results into the statistics the paper
 * reports: mean/percentile response times, the five-category latency
 * breakdown of Fig. 3, and speculation counters.
 */

#ifndef SPECFAAS_METRICS_SUMMARY_HH
#define SPECFAAS_METRICS_SUMMARY_HH

#include <limits>
#include <string>
#include <vector>

#include "runtime/engine.hh"

namespace specfaas {

/** Mean per-function latency breakdown, in milliseconds. */
struct BreakdownMs
{
    double containerCreation = 0.0;
    double runtimeSetup = 0.0;
    double platformOverhead = 0.0;
    double transferOverhead = 0.0;
    double execution = 0.0;

    double total() const
    {
        return containerCreation + runtimeSetup + platformOverhead +
               transferOverhead + execution;
    }

    /** Fraction of the total spent in actual function execution. */
    double executionShare() const;
};

/** Summary statistics over a set of invocation results. */
struct RunSummary
{
    std::size_t requests = 0;
    double meanResponseMs = 0.0;
    double p50ResponseMs = 0.0;
    double p99ResponseMs = 0.0;
    double maxResponseMs = 0.0;
    double meanFunctions = 0.0;
    double meanSquashes = 0.0;
    double meanSpeculativeLaunches = 0.0;
    /** hits/predictions; NaN when no prediction was made (render
     * with fmtPercentOrDash). */
    double branchHitRate = std::numeric_limits<double>::quiet_NaN();
    BreakdownMs perFunctionBreakdown;
};

/** Compute a RunSummary from raw results. */
RunSummary summarize(const std::vector<InvocationResult>& results);

/** Mean per-function breakdown across results. */
BreakdownMs meanBreakdown(const std::vector<InvocationResult>& results);

/** Response times in milliseconds, one per result. */
std::vector<double>
responseTimesMs(const std::vector<InvocationResult>& results);

} // namespace specfaas

#endif // SPECFAAS_METRICS_SUMMARY_HH
