#include "summary.hh"

#include <limits>

#include "common/stats_util.hh"

namespace specfaas {

double
BreakdownMs::executionShare() const
{
    const double t = total();
    return t <= 0.0 ? 0.0 : execution / t;
}

std::vector<double>
responseTimesMs(const std::vector<InvocationResult>& results)
{
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto& r : results)
        out.push_back(ticksToMs(r.responseTime()));
    return out;
}

BreakdownMs
meanBreakdown(const std::vector<InvocationResult>& results)
{
    BreakdownMs b;
    std::uint64_t functions = 0;
    for (const auto& r : results) {
        b.containerCreation += ticksToMs(r.containerCreation);
        b.runtimeSetup += ticksToMs(r.runtimeSetup);
        b.platformOverhead += ticksToMs(r.platformOverhead);
        b.transferOverhead += ticksToMs(r.transferOverhead);
        b.execution += ticksToMs(r.execution);
        functions += r.functionsExecuted;
    }
    if (functions > 0) {
        const double n = static_cast<double>(functions);
        b.containerCreation /= n;
        b.runtimeSetup /= n;
        b.platformOverhead /= n;
        b.transferOverhead /= n;
        b.execution /= n;
    }
    return b;
}

RunSummary
summarize(const std::vector<InvocationResult>& results)
{
    RunSummary s;
    s.requests = results.size();
    if (results.empty())
        return s;

    auto times = responseTimesMs(results);
    s.meanResponseMs = mean(times);
    s.p50ResponseMs = percentile(times, 50.0);
    s.p99ResponseMs = percentile(times, 99.0);
    s.maxResponseMs = percentile(times, 100.0);

    double functions = 0.0;
    double squashes = 0.0;
    double spec = 0.0;
    std::uint64_t predictions = 0;
    std::uint64_t hits = 0;
    for (const auto& r : results) {
        functions += r.functionsExecuted;
        squashes += r.squashes;
        spec += r.speculativeLaunches;
        predictions += r.branchPredictions;
        hits += r.branchHits;
    }
    const double n = static_cast<double>(results.size());
    s.meanFunctions = functions / n;
    s.meanSquashes = squashes / n;
    s.meanSpeculativeLaunches = spec / n;
    // NaN (the field's default) when no prediction was made: a
    // fabricated 1.0 here showed up as a perfect hit rate in baseline
    // runs and speculation-off sweeps.
    s.branchHitRate = predictions == 0
                          ? std::numeric_limits<double>::quiet_NaN()
                          : static_cast<double>(hits) /
                                static_cast<double>(predictions);
    s.perFunctionBreakdown = meanBreakdown(results);
    return s;
}

} // namespace specfaas
