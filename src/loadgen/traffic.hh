/**
 * @file
 * Multi-tenant traffic mix: which application each arrival belongs to
 * and where its input comes from.
 *
 * Each tenant (application) owns a private forked input-RNG stream.
 * That is the determinism argument for mixed traffic: the k-th
 * request of tenant T draws the k-th value of T's stream regardless
 * of how other tenants' arrivals interleave, so adding a tenant or
 * reweighting the mix never perturbs another tenant's inputs.
 */

#ifndef SPECFAAS_LOADGEN_TRAFFIC_HH
#define SPECFAAS_LOADGEN_TRAFFIC_HH

#include <vector>

#include "common/rng.hh"
#include "workflow/workflow.hh"

namespace specfaas {

/** One tenant of the mix: an application and its traffic share. */
struct TenantSpec
{
    const Application* app = nullptr;
    double weight = 1.0;
};

/** Weighted multi-tenant application mix with per-tenant inputs. */
class TrafficMix
{
  public:
    /**
     * @param tenants apps and weights (at least one, weights > 0)
     * @param base RNG forked once per tenant for input streams
     */
    TrafficMix(const std::vector<TenantSpec>& tenants, Rng& base);

    std::size_t size() const { return tenants_.size(); }

    const Application& app(std::size_t tenant) const
    {
        return *tenants_[tenant].app;
    }

    /** Draw a tenant index by weight from @p mixRng. */
    std::size_t pick(Rng& mixRng)
    {
        return mixRng.weightedPick(weights_);
    }

    /** Draw the next input of @p tenant from its private stream. */
    Value drawInput(std::size_t tenant);

  private:
    struct Tenant
    {
        const Application* app;
        Rng inputRng;
    };

    std::vector<Tenant> tenants_;
    std::vector<double> weights_;
};

} // namespace specfaas

#endif // SPECFAAS_LOADGEN_TRAFFIC_HH
