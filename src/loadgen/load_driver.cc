#include "load_driver.hh"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "common/stats_util.hh"
#include "sim/sim_context.hh"

namespace specfaas {

double
FleetLoadResult::completedRps() const
{
    if (wallTime <= 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(latenciesMs.size()) /
           (static_cast<double>(wallTime) /
            static_cast<double>(kSecond));
}

double
FleetLoadResult::rejectionRate() const
{
    const double total =
        static_cast<double>(latenciesMs.size() + rejected);
    if (total == 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(rejected) / total;
}

double
FleetLoadResult::latencyPercentileMs(double p) const
{
    return percentile(latenciesMs, p);
}

FleetLoadResult
LoadDriver::run(FaasPlatform& platform, TrafficMix& mix,
                const ArrivalSpec& arrivals, std::size_t num_requests)
{
    FleetLoadResult out;
    out.offeredRps = arrivals.rps;
    out.tenants.resize(mix.size());
    for (std::size_t i = 0; i < mix.size(); ++i)
        out.tenants[i].app = mix.app(i).name;

    Simulation& sim = platform.sim();
    // Fork order fixed: arrival gaps first, then tenant picks, so the
    // two streams are stable against each other across runs.
    auto process =
        std::make_shared<ArrivalProcess>(arrivals, sim.forkRng());
    auto pickRng = std::make_shared<Rng>(sim.forkRng());
    const Tick start = sim.now();
    platform.cluster().resetUtilization();

    struct GenState
    {
        std::size_t submitted = 0;
        std::size_t finished = 0;
    };
    auto state = std::make_shared<GenState>();

    // Self-scheduling arrival closure (same ownership pattern as
    // LoadGenerator::run: the shared function object outlives every
    // scheduled copy because events drain before it leaves scope).
    auto schedule_next = std::make_shared<std::function<void()>>();
    *schedule_next = [&platform, &mix, process, pickRng, num_requests,
                      state, &out, self = schedule_next.get()]() {
        if (state->submitted >= num_requests)
            return;
        Simulation& sim = platform.sim();
        OBS_ZONE(sim.context().profiler(), "loadgen/arrival");
        const std::size_t tenant = mix.pick(*pickRng);
        const Application& app = mix.app(tenant);
        ++state->submitted;
        ++out.submitted;
        ++out.tenants[tenant].submitted;
        platform.invoke(
            app, mix.drawInput(tenant),
            [&platform, state, &out, tenant](InvocationResult r) {
                OBS_ZONE(platform.sim().context().profiler(),
                         "loadgen/complete");
                TenantLoadStats& ts = out.tenants[tenant];
                if (r.rejected) {
                    ++out.rejected;
                    ++ts.rejected;
                } else {
                    const double ms =
                        static_cast<double>(r.completedAt -
                                            r.submittedAt) /
                        static_cast<double>(kMillisecond);
                    out.latenciesMs.push_back(ms);
                    ++ts.completed;
                    ts.latenciesMs.push_back(ms);
                }
                ++state->finished;
            });
        if (state->submitted < num_requests) {
            const Tick gap = process->nextGap(sim.now());
            sim.events().schedule(gap, *self);
        }
    };

    (*schedule_next)();
    sim.events().run();

    SPECFAAS_ASSERT(state->finished == num_requests,
                    "load run lost requests: %zu of %zu",
                    state->finished, num_requests);

    out.wallTime = sim.now() - start;
    out.cpuUtilization = platform.cluster().utilization();
    return out;
}

} // namespace specfaas
