#include "traffic.hh"

#include "common/logging.hh"

namespace specfaas {

TrafficMix::TrafficMix(const std::vector<TenantSpec>& tenants,
                       Rng& base)
{
    if (tenants.empty())
        fatal("TrafficMix: at least one tenant required");
    tenants_.reserve(tenants.size());
    weights_.reserve(tenants.size());
    for (const TenantSpec& t : tenants) {
        if (t.app == nullptr)
            fatal("TrafficMix: null application");
        if (t.weight <= 0.0)
            fatal("TrafficMix: tenant %s has non-positive weight %g",
                  t.app->name.c_str(), t.weight);
        tenants_.push_back(Tenant{t.app, base.fork()});
        weights_.push_back(t.weight);
    }
}

Value
TrafficMix::drawInput(std::size_t tenant)
{
    Tenant& t = tenants_[tenant];
    return t.app->inputGen ? t.app->inputGen(t.inputRng) : Value();
}

} // namespace specfaas
