#include "arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace specfaas {

ArrivalProcess::ArrivalProcess(const ArrivalSpec& spec, Rng rng)
    : spec_(spec), rng_(rng)
{
    if (spec.rps <= 0.0)
        fatal("ArrivalSpec: rps must be > 0 (got %g)", spec.rps);
    if (spec.kind == ArrivalSpec::Kind::Diurnal &&
        (spec.diurnalAmplitude < 0.0 || spec.diurnalAmplitude >= 1.0))
        fatal("ArrivalSpec: diurnalAmplitude must be in [0, 1) "
              "(got %g; >= 1 makes the rate non-positive)",
              spec.diurnalAmplitude);
    if (spec.kind == ArrivalSpec::Kind::Diurnal &&
        spec.diurnalPeriod <= 0)
        fatal("ArrivalSpec: diurnalPeriod must be > 0");
    if (spec.kind == ArrivalSpec::Kind::Bursty) {
        if (spec.burstDuty <= 0.0 || spec.burstDuty >= 1.0)
            fatal("ArrivalSpec: burstDuty must be in (0, 1) (got %g)",
                  spec.burstDuty);
        if (spec.burstMultiplier < 1.0)
            fatal("ArrivalSpec: burstMultiplier must be >= 1 (got %g)",
                  spec.burstMultiplier);
        if (spec.meanBurstLen <= 0)
            fatal("ArrivalSpec: meanBurstLen must be > 0");
        // Long-run average rate is rps: calm rate cr satisfies
        // cr × (1 − duty) + cr × mult × duty = rps.
        calmRate_ =
            spec.rps /
            (1.0 + spec.burstDuty * (spec.burstMultiplier - 1.0));
        // Burst phases last meanBurstLen and occupy duty of the
        // timeline, so calm phases last the complementary share.
        meanCalmLen_ = static_cast<double>(spec.meanBurstLen) *
                       (1.0 - spec.burstDuty) / spec.burstDuty;
    }
    if (spec.shape != ArrivalSpec::Shape::Constant) {
        if (spec.shapeFactor <= 0.0)
            fatal("ArrivalSpec: shapeFactor must be > 0 (got %g)",
                  spec.shapeFactor);
        if (spec.shapeHorizon <= 0)
            fatal("ArrivalSpec: shapeHorizon must be > 0");
    }
}

double
ArrivalProcess::rateAt(Tick now) const
{
    const Tick t = origin_ >= 0 ? now - origin_ : 0;
    double rate = spec_.rps;
    switch (spec_.kind) {
    case ArrivalSpec::Kind::Poisson:
        break;
    case ArrivalSpec::Kind::Diurnal: {
        const double phase =
            2.0 * M_PI * static_cast<double>(t) /
            static_cast<double>(spec_.diurnalPeriod);
        rate = spec_.rps *
               (1.0 + spec_.diurnalAmplitude * std::sin(phase));
        break;
    }
    case ArrivalSpec::Kind::Bursty:
        rate = burst_ ? calmRate_ * spec_.burstMultiplier : calmRate_;
        break;
    }

    switch (spec_.shape) {
    case ArrivalSpec::Shape::Constant:
        break;
    case ArrivalSpec::Shape::Ramp: {
        const double progress = std::min(
            1.0, static_cast<double>(t) /
                     static_cast<double>(spec_.shapeHorizon));
        rate *= 1.0 + (spec_.shapeFactor - 1.0) * progress;
        break;
    }
    case ArrivalSpec::Shape::Step:
        if (t >= spec_.shapeHorizon)
            rate *= spec_.shapeFactor;
        break;
    }
    return rate;
}

void
ArrivalProcess::advanceBursts(Tick now)
{
    while (now >= stateUntil_) {
        burst_ = !burst_;
        const double mean_len =
            burst_ ? static_cast<double>(spec_.meanBurstLen)
                   : meanCalmLen_;
        stateUntil_ += std::max<Tick>(
            1, static_cast<Tick>(rng_.exponential(mean_len)));
    }
}

Tick
ArrivalProcess::nextGap(Tick now)
{
    if (origin_ < 0) {
        origin_ = now;
        if (spec_.kind == ArrivalSpec::Kind::Bursty) {
            // Start calm; the first flip is drawn like any other.
            burst_ = true; // advanceBursts flips to calm immediately
            stateUntil_ = now;
            advanceBursts(now);
        }
    } else if (spec_.kind == ArrivalSpec::Kind::Bursty) {
        advanceBursts(now);
    }
    const double rate = rateAt(now);
    const double mean_gap_us = 1e6 / rate;
    return std::max<Tick>(
        1, static_cast<Tick>(rng_.exponential(mean_gap_us)));
}

} // namespace specfaas
