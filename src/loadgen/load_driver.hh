/**
 * @file
 * Open-loop trace-driven load driver over a platform.
 *
 * Couples an ArrivalProcess (when requests arrive) with a TrafficMix
 * (whose request it is, with what input) and drives a FaasPlatform to
 * completion, collecting per-tenant and aggregate QoS statistics.
 * This is the fleet-scale generalisation of LoadGenerator: arrivals
 * are non-stationary, tenants are weighted instead of round-robin,
 * and the result keeps full latency vectors for percentile curves.
 */

#ifndef SPECFAAS_LOADGEN_LOAD_DRIVER_HH
#define SPECFAAS_LOADGEN_LOAD_DRIVER_HH

#include <string>
#include <vector>

#include "loadgen/arrival.hh"
#include "loadgen/traffic.hh"
#include "platform/platform.hh"

namespace specfaas {

/** Per-tenant outcome of one driven run. */
struct TenantLoadStats
{
    std::string app;
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t rejected = 0;
    /** Response times of completed requests, ms, completion order. */
    std::vector<double> latenciesMs;
};

/** Aggregate outcome of one driven run. */
struct FleetLoadResult
{
    double offeredRps = 0.0;
    std::size_t submitted = 0;
    std::size_t rejected = 0;
    Tick wallTime = 0;
    /** Mean cluster CPU utilization over the run window, [0,1]. */
    double cpuUtilization = 0.0;
    /** Response times of all completed requests, ms. */
    std::vector<double> latenciesMs;
    std::vector<TenantLoadStats> tenants;

    std::size_t completedCount() const { return latenciesMs.size(); }

    /** Achieved completion rate; NaN on a zero-length window. */
    double completedRps() const;

    /** Rejected fraction of submissions; NaN when nothing ran. */
    double rejectionRate() const;

    /** Latency percentile in ms (p in [0,100]); NaN when empty. */
    double latencyPercentileMs(double p) const;
};

/** Drives one arrival process + traffic mix into a platform. */
class LoadDriver
{
  public:
    /**
     * Submit @p num_requests arrivals, run the simulation until all
     * complete, and collect statistics. The arrival stream and the
     * tenant-pick stream fork off the platform's simulation RNG, so
     * equal seeds give byte-equal runs.
     */
    static FleetLoadResult run(FaasPlatform& platform, TrafficMix& mix,
                               const ArrivalSpec& arrivals,
                               std::size_t num_requests);
};

} // namespace specfaas

#endif // SPECFAAS_LOADGEN_LOAD_DRIVER_HH
