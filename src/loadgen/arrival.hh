/**
 * @file
 * Pluggable open-loop arrival processes for trace-driven load.
 *
 * Three inter-arrival kinds cover the load shapes serverless
 * platforms see in production:
 *
 *   - Poisson: memoryless arrivals at a constant rate (the paper's
 *     §VII load generator);
 *   - Diurnal: a Poisson process whose instantaneous rate follows a
 *     sinusoid, compressing a day/night cycle into simulated seconds;
 *   - Bursty: a two-state Markov-modulated Poisson process (MMPP-2)
 *     alternating calm and burst phases, with the calm rate chosen so
 *     the long-run average equals the configured rps.
 *
 * A load shape (constant / ramp / step) multiplies the base rate on
 * top of the kind, for warm-up ramps and step-load experiments.
 * Everything draws from one forked Rng stream, so a process is a
 * deterministic function of (spec, seed).
 */

#ifndef SPECFAAS_LOADGEN_ARRIVAL_HH
#define SPECFAAS_LOADGEN_ARRIVAL_HH

#include "common/rng.hh"
#include "common/types.hh"

namespace specfaas {

/** Static description of one arrival process. */
struct ArrivalSpec
{
    enum class Kind
    {
        Poisson, ///< constant-rate memoryless arrivals
        Diurnal, ///< sinusoidally modulated rate
        Bursty,  ///< two-state MMPP (calm / burst)
    };

    enum class Shape
    {
        Constant, ///< rate multiplier 1 throughout
        Ramp,     ///< multiplier 1 → shapeFactor over shapeHorizon
        Step,     ///< multiplier 1, then shapeFactor after shapeHorizon
    };

    Kind kind = Kind::Poisson;
    Shape shape = Shape::Constant;

    /** Long-run average offered load, requests per second. */
    double rps = 100.0;

    /** @{ Diurnal: rate(t) = rps × (1 + amplitude·sin(2πt/period)). */
    double diurnalAmplitude = 0.5; ///< in [0, 1)
    Tick diurnalPeriod = 10 * kSecond;
    /** @} */

    /** @{ Bursty: burst rate = burstMultiplier × calm rate; bursts
     * cover burstDuty of the time and last meanBurstLen on average
     * (calm phases are sized so duty holds). */
    double burstMultiplier = 4.0;
    double burstDuty = 0.2; ///< fraction of time in burst, (0, 1)
    Tick meanBurstLen = 200 * kMillisecond;
    /** @} */

    /** @{ Shape: target multiplier and when it is reached/applied. */
    double shapeFactor = 2.0;
    Tick shapeHorizon = 5 * kSecond;
    /** @} */
};

/**
 * One running arrival process. The first nextGap() call anchors the
 * process's time origin, so shapes and sinusoid phases are relative
 * to the start of the run, not to absolute simulated time.
 */
class ArrivalProcess
{
  public:
    /**
     * @param spec validated process description (fatal on nonsense:
     *        non-positive rps, amplitude ≥ 1, duty outside (0,1))
     * @param rng private stream (fork one per process)
     */
    ArrivalProcess(const ArrivalSpec& spec, Rng rng);

    /**
     * Draw the gap to the next arrival given the current time.
     * Exponential at the instantaneous rate; at least one tick.
     */
    Tick nextGap(Tick now);

    /** Instantaneous rate at @p now, in rps (shape included). */
    double rateAt(Tick now) const;

    /** True while the MMPP is in its burst phase (tests). */
    bool inBurst() const { return burst_; }

    const ArrivalSpec& spec() const { return spec_; }

  private:
    /** Advance the MMPP phase machine up to @p now. */
    void advanceBursts(Tick now);

    ArrivalSpec spec_;
    Rng rng_;
    Tick origin_ = -1; ///< set on the first nextGap() call
    /** @{ MMPP-2 state. */
    bool burst_ = false;
    Tick stateUntil_ = 0;
    double meanCalmLen_ = 0.0;
    double calmRate_ = 0.0;
    /** @} */
};

} // namespace specfaas

#endif // SPECFAAS_LOADGEN_ARRIVAL_HH
