/**
 * @file
 * Dynamic function instances.
 *
 * A FunctionInstance is one handler-process execution of a function:
 * the analogue of a dynamic instruction in the paper's out-of-order
 * analogy. Instances carry a program-order key (their position in the
 * invocation's Function Execution Pipeline), speculation tags, the
 * interpreter state, and per-category timing for the Fig. 3
 * breakdown.
 */

#ifndef SPECFAAS_RUNTIME_INSTANCE_HH
#define SPECFAAS_RUNTIME_INSTANCE_HH

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/node.hh"
#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/slot_array.hh"
#include "common/small_vector.hh"
#include "common/symbol.hh"
#include "common/types.hh"
#include "common/value.hh"
#include "workflow/flow_program.hh"
#include "workflow/function_def.hh"

namespace specfaas {

struct Container;

/**
 * Program-order position of an instance within one invocation.
 *
 * Lexicographic vectors support both explicit paths (single growing
 * component) and implicit call trees (a callee's key extends its
 * caller's key, placing it immediately after the caller and before
 * the caller's later callees): [2] < [2,0] < [2,0,1] < [2,1] < [3].
 */
using OrderKey = SmallVector<std::int32_t, 8>;

/** Lexicographic comparison; a proper prefix orders first. */
bool orderKeyLess(const OrderKey& a, const OrderKey& b);

/** True when @p pre is a proper prefix of @p key (caller-of). */
bool orderKeyIsPrefix(const OrderKey& pre, const OrderKey& key);

/** Render an order key like "[2.0.1]". */
std::string orderKeyToString(const OrderKey& key);

/** Where the input fed to an instance came from. */
enum class InputSource {
    /** Resolved, definitely correct value. */
    Actual,
    /** Memoized predecessor output (data speculation, §V-B). */
    Memoized,
    /** Inherited from a branch on a predicted path (§V-A). */
    Inherited,
};

/** Why an instance was killed. */
enum class SquashReason {
    None,
    ControlMispredict,
    DataMispredict,
    BufferViolation,
    CascadedFromPredecessor,
    /** Killed by an injected fault (crash, node failure, ...). */
    Fault,
};

/** Stable string for a SquashReason (trace/table output). */
const char* squashReasonName(SquashReason reason);

/** Interpreter progress of one instance. */
enum class InstanceState {
    /** Waiting for a container / launch overheads. */
    Launching,
    /** Executing its op program. */
    Running,
    /** Parked: speculative side effect deferred (§VI). */
    StalledSideEffect,
    /** Parked: read stalled by the squash minimizer (§V-C). */
    StalledRead,
    /** Parked: waiting for an in-flight callee (§V-D). */
    StalledCallee,
    /** Body finished, output produced, not yet committed. */
    Completed,
    /** Committed / merged into caller. */
    Committed,
    /** Squashed. */
    Dead,
};

/** One dynamic function execution. */
struct FunctionInstance
{
    InstanceId id = 0;
    InvocationId invocation = 0;
    const FunctionDef* def = nullptr;

    /** Position in the pipeline. */
    OrderKey order;

    /** Flow-program node this instance executes (explicit; else -1). */
    FlowIndex flowNode = kFlowNone;

    /** @{ Speculation tags (§V, Figure 7). */
    bool controlSpeculative = false;
    bool dataSpeculative = false;
    InputSource inputSource = InputSource::Actual;
    /** @} */

    InstanceState state = InstanceState::Launching;
    SquashReason squashReason = SquashReason::None;

    /**
     * A "stall-read" trace span is open on this instance's exec
     * track. Closed by resume (SpecController) or squash
     * (Interpreter); the flag keeps begin/end emission balanced.
     */
    bool stallSpanOpen = false;

    /**
     * Cascade id of the squash that killed this instance (0 = never
     * squashed). Squash trace events carry the same id plus a parent
     * link, so the analyzer can attribute wasted work to cascade
     * depth.
     */
    std::uint64_t squashId = 0;

    /** Interpreter state. */
    Env env;
    std::size_t pc = 0;
    Value output;

    /** Per-instance jitter stream (stable across reruns of a seed). */
    Rng jitterRng{0};

    /** Where the handler runs. */
    Container* container = nullptr;
    NodeId node = 0;
    ComputeTaskId activeTask = 0;

    /**
     * Monotonic epoch; bumped on squash so stale event callbacks
     * (storage completions, parked resumes) can detect they refer to
     * a dead incarnation of the work.
     */
    std::uint64_t epoch = 0;

    /** Local temp files created by this handler (copy-on-write). */
    std::set<std::string> ownFiles;

    /**
     * Observed call-site behaviour: (op index, taken?) per Call op
     * the interpreter passed over. Feeds the learned sequence table
     * and call predictors of implicit workflows at commit time.
     */
    std::vector<std::pair<std::size_t, bool>> callSiteOutcomes;

    /** Actual arguments passed at each executed call site. */
    FlatMap<std::size_t, Value> observedCallArgs;

    /** Callee function per executed call site. */
    FlatMap<std::size_t, Symbol> observedCallees;

    /** Path-history hash at this instance's position (§V-A). */
    std::uint64_t pathHash = 0;

    /** Caller instance for implicit callees (null at top level). */
    FunctionInstance* caller = nullptr;

    /**
     * Generation-tagged handle to the controller slot this instance
     * occupies. Set by the owning controller when the instance is
     * bound to a pipeline slot; a stale generation means the slot was
     * squashed/committed and recycled, so callbacks holding the
     * handle see "gone" instead of someone else's slot.
     */
    SlotHandle slotHandle;

    /** @{ Timing for the Fig. 3 breakdown, in Ticks. */
    Tick launchedAt = 0;
    Tick startedAt = 0;
    Tick completedAt = 0;
    Tick containerCreationTime = 0;
    Tick runtimeSetupTime = 0;
    Tick platformOverheadTime = 0;
    Tick execTime = 0;
    /** @} */

    /** True while the instance can still affect the invocation. */
    bool live() const
    {
        return state != InstanceState::Dead &&
               state != InstanceState::Committed;
    }

    /** Speculative in any way (control, data, or input). */
    bool speculative() const
    {
        return controlSpeculative || dataSpeculative ||
               inputSource != InputSource::Actual;
    }

    /** Diagnostic label like "Normalize[1.2]#42". */
    std::string label() const;
};

/** Shared-ownership handle used by asynchronous callbacks. */
using InstancePtr = std::shared_ptr<FunctionInstance>;

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_INSTANCE_HH
