/**
 * @file
 * The function runtime: executes op programs on the simulated
 * cluster, forwarding every intercepted operation to the controller
 * through RuntimeHooks.
 *
 * Squash support: every asynchronous continuation captures the
 * instance epoch and re-checks it before acting, so killing a handler
 * mid-flight orphans its pending events harmlessly; the occupied core
 * is reclaimed through Node::abort per the active squash policy.
 */

#ifndef SPECFAAS_RUNTIME_INTERPRETER_HH
#define SPECFAAS_RUNTIME_INTERPRETER_HH

#include "cluster/cluster.hh"
#include "runtime/hooks.hh"
#include "runtime/instance.hh"
#include "sim/simulation.hh"

namespace specfaas::obs {
class Profiler;
class TraceRecorder;
}

namespace specfaas {

/** How to stop a mis-speculated handler (§VI "Minimizing Squash Cost"). */
enum class SquashPolicy {
    /** Let the handler finish in the background; discard results. */
    Lazy,
    /** Kill the whole container (~10 s, loses warm state). */
    ContainerKill,
    /** Kill only the handler process (~1 ms); container survives. */
    ProcessKill,
};

/** Latencies of purely local runtime operations. */
struct RuntimeCosts
{
    /** Local temp-file write (copy-on-write create + write). */
    Tick fileWrite = 80;
    /** Local temp-file read. */
    Tick fileRead = 40;
    /** External HTTP request round trip. */
    Tick httpRequest = msToTicks(3.0);
    /** Pure local computation step (SetVar). */
    Tick localStep = 5;
};

/** Executes function bodies for both baseline and SpecFaaS runs. */
class Interpreter
{
  public:
    /**
     * @param sim simulation context
     * @param cluster the worker cluster (cores, containers)
     * @param hooks controller-side interception handlers
     */
    Interpreter(Simulation& sim, Cluster& cluster, RuntimeHooks& hooks);

    /** Begin executing @p inst's body from pc = 0. */
    void start(const InstancePtr& inst);

    /**
     * Squash: stop all activity of @p inst according to @p policy and
     * mark it Dead. With Lazy the busy core keeps burning until the
     * natural end of the current burst.
     */
    void squash(const InstancePtr& inst, SquashPolicy policy);

    /** Local-op latencies in effect. */
    const RuntimeCosts& costs() const { return costs_; }

    /** Mutable access so experiments can recalibrate. */
    RuntimeCosts& costs() { return costs_; }

    /** Controller hooks (the launcher reports cold-start crashes). */
    RuntimeHooks& hooks() { return hooks_; }

  private:
    void step(const InstancePtr& inst);
    void execOp(const InstancePtr& inst, const Op& op);
    void advance(const InstancePtr& inst);

    /** True when a callback belongs to the live incarnation. */
    static bool
    fresh(const InstancePtr& inst, std::uint64_t epoch)
    {
        return inst->epoch == epoch && inst->state != InstanceState::Dead;
    }

    Simulation& sim_;
    Cluster& cluster_;
    RuntimeHooks& hooks_;
    RuntimeCosts costs_;
    /**
     * Observability sinks hoisted out of the hot loops: resolved once
     * from sim.context() at construction, so every op-dispatch call
     * site pays a single member load plus one predictable enabled()
     * branch instead of re-chasing context pointers per op.
     */
    obs::TraceRecorder& trace_;
    obs::Profiler& profiler_;
};

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_INTERPRETER_HH
