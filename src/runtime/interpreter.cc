#include "interpreter.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "sim/sim_context.hh"

namespace specfaas {

Interpreter::Interpreter(Simulation& sim, Cluster& cluster,
                         RuntimeHooks& hooks)
    : sim_(sim), cluster_(cluster), hooks_(hooks),
      trace_(sim.context().trace()),
      profiler_(sim.context().profiler())
{
}

void
Interpreter::start(const InstancePtr& inst)
{
    SPECFAAS_ASSERT(inst->def != nullptr, "starting undefined function");
    OBS_ZONE(profiler_, "interp/start");
    inst->state = InstanceState::Running;
    inst->startedAt = sim_.now();
    inst->pc = 0;
    // Execution span on the node the handler landed on.
    if (auto& tr = trace_; tr.enabled()) {
        tr.begin(obs::cat::kExec, inst->def->name, sim_.now(),
                 obs::nodePid(inst->node), inst->id,
                 {{"order", orderKeyToString(inst->order)},
                  {"container_creation",
                   strFormat("%lld", static_cast<long long>(
                                         inst->containerCreationTime)),
                   true},
                  {"runtime_setup",
                   strFormat("%lld", static_cast<long long>(
                                         inst->runtimeSetupTime)),
                   true}});
    }
    step(inst);
}

void
Interpreter::advance(const InstancePtr& inst)
{
    ++inst->pc;
    step(inst);
}

void
Interpreter::step(const InstancePtr& inst)
{
    if (inst->state == InstanceState::Dead)
        return;
    OBS_ZONE(profiler_, "interp/step");
    // Injected container crash at an op boundary: the handler process
    // dies and the controller's recovery machinery takes over.
    if (auto* faults = sim_.faultInjector();
        faults != nullptr && inst->pc < inst->def->body.size() &&
        faults->shouldCrash(inst->def->name,
                            CrashPhase::MidExecution)) {
        hooks_.crashed(inst, FaultKind::ContainerCrash);
        return;
    }
    // Skip over guarded ops whose guard is false without paying any
    // simulated time (the guard evaluation is part of the preceding
    // compute work).
    while (inst->pc < inst->def->body.size()) {
        const Op& op = inst->def->body[inst->pc];
        if (op.guard && !op.guard(inst->env)) {
            if (op.kind == Op::Kind::Call)
                inst->callSiteOutcomes.emplace_back(inst->pc, false);
            ++inst->pc;
            continue;
        }
        if (op.kind == Op::Kind::Call)
            inst->callSiteOutcomes.emplace_back(inst->pc, true);
        execOp(inst, op);
        return;
    }
    // Injected crash between finishing the body and reporting
    // completion: the controller never hears from this handler.
    if (auto* faults = sim_.faultInjector();
        faults != nullptr &&
        faults->shouldCrash(inst->def->name, CrashPhase::AtCommit)) {
        hooks_.crashed(inst, FaultKind::ContainerCrash);
        return;
    }
    // Body finished: produce the output and notify the controller.
    inst->state = InstanceState::Completed;
    inst->completedAt = sim_.now();
    inst->output = inst->def->output ? inst->def->output(inst->env)
                                     : inst->env.input;
    inst->ownFiles.clear(); // temp files are discarded (§VI)
    if (auto& tr = trace_; tr.enabled()) {
        tr.end(obs::cat::kExec, inst->def->name, sim_.now(),
               obs::nodePid(inst->node), inst->id,
               {{"exec_ticks",
                 strFormat("%lld",
                           static_cast<long long>(inst->execTime)),
                 true}});
        tr.end(obs::cat::kLifecycle, inst->def->name, sim_.now(),
               obs::kControlPlanePid, inst->id);
    }
    hooks_.completed(inst, inst->output);
}

void
Interpreter::execOp(const InstancePtr& inst, const Op& op)
{
    const std::uint64_t epoch = inst->epoch;
    switch (op.kind) {
      case Op::Kind::Compute: {
        // Stuck handler: the burst hangs, the core stays occupied for
        // the watchdog timeout, then the platform kills the handler.
        if (auto* faults = sim_.faultInjector(); faults != nullptr) {
            if (const Tick timeout =
                    faults->stuckDuration(inst->def->name);
                timeout > 0) {
                Node& node = cluster_.node(inst->node);
                inst->activeTask =
                    node.submit(timeout, [this, inst, epoch]() {
                        if (!fresh(inst, epoch))
                            return;
                        inst->activeTask = 0;
                        hooks_.crashed(inst,
                                       FaultKind::StuckFunction);
                    });
                return;
            }
        }
        Tick duration = static_cast<Tick>(inst->jitterRng.lognormal(
            static_cast<double>(op.duration), inst->def->computeCv));
        duration = std::max<Tick>(duration, 10);
        OBS_ZONE_SCOPE(zone, profiler_, "interp/op/compute");
        zone.addCount(static_cast<std::uint64_t>(duration));
        Node& node = cluster_.node(inst->node);
        inst->activeTask = node.submit(duration, [this, inst, epoch,
                                                  duration]() {
            if (!fresh(inst, epoch))
                return;
            inst->activeTask = 0;
            inst->execTime += duration;
            advance(inst);
        });
        return;
      }
      case Op::Kind::StorageRead: {
        OBS_ZONE(profiler_, "interp/op/storage-read");
        const std::string key = op.key(inst->env);
        Tick extraDelay = 0;
        if (auto* faults = sim_.faultInjector(); faults != nullptr) {
            // A failed read crashes the handler (the SDK retries
            // internally; what the platform sees is a dead handler).
            if (faults->shouldFailStorage(inst->def->name, false)) {
                hooks_.crashed(inst, FaultKind::StorageReadError);
                return;
            }
            extraDelay = faults->storageDelay(inst->def->name);
        }
        auto doRead = [this, inst, epoch, key, var = op.var]() {
            if (auto& tr = trace_; tr.enabled()) {
                tr.instant(obs::cat::kStorage, "storage-read",
                           sim_.now(), obs::nodePid(inst->node),
                           inst->id, {{"key", key}});
            }
            hooks_.storageGet(
                inst, key, [this, inst, epoch, var](Value v) {
                    if (!fresh(inst, epoch))
                        return;
                    inst->state = InstanceState::Running;
                    inst->env.set(var, std::move(v));
                    advance(inst);
                });
        };
        if (extraDelay > 0) {
            sim_.events().schedule(
                extraDelay, [inst, epoch, doRead]() {
                    if (!fresh(inst, epoch))
                        return;
                    doRead();
                });
        } else {
            doRead();
        }
        return;
      }
      case Op::Kind::StorageWrite: {
        OBS_ZONE(profiler_, "interp/op/storage-write");
        const std::string key = op.key(inst->env);
        Value v = op.value(inst->env);
        Tick extraDelay = 0;
        if (auto* faults = sim_.faultInjector(); faults != nullptr) {
            if (faults->shouldFailStorage(inst->def->name, true)) {
                hooks_.crashed(inst, FaultKind::StorageWriteError);
                return;
            }
            extraDelay = faults->storageDelay(inst->def->name);
        }
        auto doWrite = [this, inst, epoch, key,
                        v = std::move(v)]() mutable {
            if (auto& tr = trace_; tr.enabled()) {
                tr.instant(obs::cat::kStorage, "storage-write",
                           sim_.now(), obs::nodePid(inst->node),
                           inst->id, {{"key", key}});
            }
            hooks_.storagePut(inst, key, std::move(v),
                              [this, inst, epoch]() {
                                  if (!fresh(inst, epoch))
                                      return;
                                  inst->state = InstanceState::Running;
                                  advance(inst);
                              });
        };
        if (extraDelay > 0) {
            sim_.events().schedule(
                extraDelay,
                [inst, epoch, doWrite = std::move(doWrite)]() mutable {
                    if (!fresh(inst, epoch))
                        return;
                    doWrite();
                });
        } else {
            doWrite();
        }
        return;
      }
      case Op::Kind::Call: {
        OBS_ZONE(profiler_, "interp/op/call");
        Value args = op.value(inst->env);
        hooks_.functionCall(
            inst, inst->pc, op.callee, std::move(args),
            [this, inst, epoch, var = op.var](Value result) {
                if (!fresh(inst, epoch))
                    return;
                inst->state = InstanceState::Running;
                if (!var.empty())
                    inst->env.set(var, std::move(result));
                advance(inst);
            });
        return;
      }
      case Op::Kind::Http: {
        OBS_ZONE(profiler_, "interp/op/http");
        if (auto* faults = sim_.faultInjector();
            faults != nullptr &&
            faults->shouldFailHttp(inst->def->name)) {
            hooks_.crashed(inst, FaultKind::HttpFailure);
            return;
        }
        hooks_.httpRequest(inst, [this, inst, epoch]() {
            if (!fresh(inst, epoch))
                return;
            inst->state = InstanceState::Running;
            sim_.events().schedule(costs_.httpRequest,
                                   [this, inst, epoch]() {
                                       if (!fresh(inst, epoch))
                                           return;
                                       advance(inst);
                                   });
        });
        return;
      }
      case Op::Kind::FileWrite: {
        OBS_ZONE(profiler_, "interp/op/file-write");
        // Copy-on-write local temp file (§VI): the handler gets its
        // own uniquely named file; no globally visible effect.
        inst->ownFiles.insert(op.key(inst->env));
        sim_.events().schedule(costs_.fileWrite, [this, inst, epoch]() {
            if (!fresh(inst, epoch))
                return;
            advance(inst);
        });
        return;
      }
      case Op::Kind::FileRead: {
        OBS_ZONE(profiler_, "interp/op/file-read");
        const std::string name = op.key(inst->env);
        sim_.events().schedule(
            costs_.fileRead, [this, inst, epoch, name,
                              var = op.var]() {
                if (!fresh(inst, epoch))
                    return;
                if (!var.empty()) {
                    // Reads observe the handler's own copy when one
                    // exists; content is modelled as the file name.
                    inst->env.set(var, Value(name));
                }
                advance(inst);
            });
        return;
      }
      case Op::Kind::SetVar: {
        OBS_ZONE(profiler_, "interp/op/setvar");
        Value v = op.value(inst->env);
        sim_.events().schedule(costs_.localStep,
                               [this, inst, epoch,
                                var = op.var, v = std::move(v)]() {
                                   if (!fresh(inst, epoch))
                                       return;
                                   inst->env.set(var, v);
                                   advance(inst);
                               });
        return;
      }
    }
    panic("unreachable op kind");
}

void
Interpreter::squash(const InstancePtr& inst, SquashPolicy policy)
{
    SPECFAAS_ASSERT(inst->state != InstanceState::Committed,
                    "squashing committed instance %s",
                    inst->label().c_str());
    if (inst->state == InstanceState::Dead)
        return;
    OBS_ZONE(profiler_, "interp/squash");

    const ComputeTaskId task = inst->activeTask;
    Container* container = inst->container;
    Node& node = cluster_.node(inst->node);

    // Close any spans the dead incarnation left open so the trace
    // stays balanced: the exec span if the body was still running,
    // and the lifecycle span unless completion already closed it.
    if (auto& tr = trace_; tr.enabled()) {
        const bool executing =
            inst->state == InstanceState::Running ||
            inst->state == InstanceState::StalledSideEffect ||
            inst->state == InstanceState::StalledRead ||
            inst->state == InstanceState::StalledCallee;
        if (inst->stallSpanOpen) {
            // The squash minimizer's stall span is still open inside
            // the exec span; close it first to keep nesting balanced.
            inst->stallSpanOpen = false;
            tr.end(obs::cat::kExec, "stall-read", sim_.now(),
                   obs::nodePid(inst->node), inst->id,
                   {{"squashed", "1", true}});
        }
        const std::string execTicks =
            strFormat("%lld", static_cast<long long>(inst->execTime));
        const std::string squashId = strFormat(
            "%llu", static_cast<unsigned long long>(inst->squashId));
        if (executing) {
            tr.end(obs::cat::kExec, inst->def->name, sim_.now(),
                   obs::nodePid(inst->node), inst->id,
                   {{"squashed", "1", true},
                    {"exec_ticks", execTicks, true}});
        }
        if (inst->state != InstanceState::Completed) {
            tr.end(obs::cat::kLifecycle, inst->def->name, sim_.now(),
                   obs::kControlPlanePid, inst->id,
                   {{"squashed", "1", true},
                    {"reason", squashReasonName(inst->squashReason)},
                    {"squash_id", squashId, true},
                    {"exec_ticks", execTicks, true}});
        } else {
            // Completed-but-uncommitted work still vanishes; record
            // the kill as an instant since both spans are closed.
            tr.instant(obs::cat::kLifecycle, "squash-completed",
                       sim_.now(), obs::kControlPlanePid, inst->id,
                       {{"reason",
                         squashReasonName(inst->squashReason)},
                        {"squash_id", squashId, true},
                        {"exec_ticks", execTicks, true}});
        }
    }

    // CPU the Lazy policy will keep burning in the background: every
    // compute burst from the current op to the end of the body.
    Tick lazyRemaining = 0;
    if (policy == SquashPolicy::Lazy &&
        inst->state != InstanceState::Completed) {
        for (std::size_t i = inst->pc; i < inst->def->body.size(); ++i)
            if (inst->def->body[i].kind == Op::Kind::Compute)
                lazyRemaining += inst->def->body[i].duration;
    }

    // Kill the incarnation: all pending continuations become stale.
    ++inst->epoch;
    inst->state = InstanceState::Dead;
    inst->activeTask = 0;
    inst->container = nullptr;
    inst->ownFiles.clear();

    switch (policy) {
      case SquashPolicy::Lazy: {
        // Replace the in-flight burst with one background task that
        // burns the whole remaining body, then free the container.
        if (task != 0)
            node.abort(task, 0);
        auto finish = [this, container]() {
            if (container != nullptr)
                cluster_.containers().release(*container);
        };
        if (lazyRemaining > 0)
            node.submit(lazyRemaining, std::move(finish));
        else
            finish();
        break;
      }
      case SquashPolicy::ProcessKill: {
        if (task != 0)
            node.abort(task, cluster_.config().processKillOverhead);
        if (container != nullptr)
            cluster_.containers().release(*container);
        break;
      }
      case SquashPolicy::ContainerKill: {
        if (task != 0)
            node.abort(task, cluster_.config().processKillOverhead);
        if (container != nullptr)
            cluster_.containers().destroy(*container);
        break;
      }
    }
}

} // namespace specfaas
