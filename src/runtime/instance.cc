#include "instance.hh"

#include <charconv>

#include "common/logging.hh"

namespace specfaas {

bool
orderKeyLess(const OrderKey& a, const OrderKey& b)
{
    return std::lexicographical_compare(a.begin(), a.end(),
                                        b.begin(), b.end());
}

bool
orderKeyIsPrefix(const OrderKey& pre, const OrderKey& key)
{
    if (pre.size() >= key.size())
        return false;
    for (std::size_t i = 0; i < pre.size(); ++i)
        if (pre[i] != key[i])
            return false;
    return true;
}

std::string
orderKeyToString(const OrderKey& key)
{
    // Rendered for every traced slot event, so format in one stack
    // pass; 192 bytes covers keys ~15 levels deep, far beyond any
    // real workflow nesting.
    char local[192];
    std::size_t n = 0;
    local[n++] = '[';
    if (key.size() * 12 + 2 <= sizeof local) {
        for (std::size_t i = 0; i < key.size(); ++i) {
            if (i > 0)
                local[n++] = '.';
            n = static_cast<std::size_t>(
                std::to_chars(local + n, local + sizeof local, key[i])
                    .ptr -
                local);
        }
        local[n++] = ']';
        return std::string(local, n);
    }
    std::string out = "[";
    for (std::size_t i = 0; i < key.size(); ++i) {
        if (i > 0)
            out += '.';
        out += strFormat("%d", key[i]);
    }
    out += ']';
    return out;
}

const char*
squashReasonName(SquashReason reason)
{
    switch (reason) {
    case SquashReason::None:
        return "none";
    case SquashReason::ControlMispredict:
        return "control-mispredict";
    case SquashReason::DataMispredict:
        return "data-mispredict";
    case SquashReason::BufferViolation:
        return "buffer-violation";
    case SquashReason::CascadedFromPredecessor:
        return "cascaded";
    case SquashReason::Fault:
        return "fault";
    }
    return "?";
}

std::string
FunctionInstance::label() const
{
    return strFormat("%s%s#%llu",
                     def != nullptr ? def->name.c_str() : "?",
                     orderKeyToString(order).c_str(),
                     static_cast<unsigned long long>(id));
}

} // namespace specfaas
