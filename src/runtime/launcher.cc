#include "launcher.hh"

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "sim/sim_context.hh"

namespace specfaas {

namespace {

const char*
inputSourceName(InputSource source)
{
    switch (source) {
    case InputSource::Actual:
        return "actual";
    case InputSource::Memoized:
        return "memoized";
    case InputSource::Inherited:
        return "inherited";
    }
    return "?";
}

} // namespace

Launcher::Launcher(Simulation& sim, Cluster& cluster,
                   const FunctionRegistry& registry, Interpreter& interp)
    : sim_(sim), cluster_(cluster), registry_(registry), interp_(interp)
{
}

InstancePtr
Launcher::launch(LaunchSpec spec)
{
    OBS_ZONE(sim_.context().profiler(), "runtime/launch");
    auto inst = std::make_shared<FunctionInstance>();
    inst->id = sim_.context().nextInstanceId();
    ++launches_;
    inst->invocation = spec.invocation;
    inst->def = &registry_.get(spec.function);
    inst->order = std::move(spec.order);
    inst->flowNode = spec.flowNode;
    inst->controlSpeculative = spec.controlSpeculative;
    inst->dataSpeculative = spec.dataSpeculative;
    inst->inputSource = spec.inputSource;
    inst->caller = spec.caller;
    inst->env.input = std::move(spec.input);
    inst->state = InstanceState::Launching;
    inst->launchedAt = sim_.now();
    inst->platformOverheadTime = spec.preOverhead;
    inst->jitterRng = sim_.forkRng();

    // Lifecycle span: launch → completion (or squash). Closed by the
    // interpreter so both engines share one emission point.
    if (auto& tr = sim_.context().trace(); tr.enabled()) {
        tr.begin(obs::cat::kLifecycle, inst->def->name, sim_.now(),
                 obs::kControlPlanePid, inst->id,
                 {{"order", orderKeyToString(inst->order)},
                  {"invocation",
                   strFormat("%llu", static_cast<unsigned long long>(
                                         inst->invocation))},
                  {"input", inputSourceName(inst->inputSource)},
                  {"control_speculative",
                   inst->controlSpeculative ? "1" : "0", true}});
    }

    const std::uint64_t epoch = inst->epoch;
    // The launch holds a controller thread for the service time; any
    // preOverhead beyond it is pure wire latency.
    const Tick service = spec.controllerService;
    const Tick wire =
        std::max<Tick>(0, spec.preOverhead - service);
    auto after_controller = [this, inst, epoch, wire]() {
        if (inst->epoch != epoch || inst->state == InstanceState::Dead)
            return;
        sim_.events().schedule(wire, [this, inst, epoch]() {
            proceedToContainer(inst, epoch);
        });
    };
    if (service > 0)
        cluster_.controller().submit(service, std::move(after_controller));
    else
        after_controller();
    return inst;
}

void
Launcher::proceedToContainer(const InstancePtr& inst, std::uint64_t epoch)
{
    if (inst->epoch != epoch || inst->state == InstanceState::Dead)
        return;
    cluster_.containers().acquire(
        inst->def->sym, // registry defs always carry a valid sym
        [this, inst, epoch](Container& c, const AcquireTiming& t) {
            if (inst->epoch != epoch ||
                inst->state == InstanceState::Dead) {
                // Squashed while the container was being set up;
                // hand the (now warm) container back.
                cluster_.containers().release(c);
                return;
            }
            inst->container = &c;
            inst->node = c.node;
            inst->containerCreationTime = t.containerCreation;
            inst->runtimeSetupTime = t.runtimeSetup;
            // Injected crash during container start-up: the handler
            // never begins executing; the controller retries.
            if (auto* faults = sim_.faultInjector();
                faults != nullptr &&
                faults->shouldCrash(inst->def->name,
                                    CrashPhase::ColdStart)) {
                interp_.hooks().crashed(inst,
                                        FaultKind::ContainerCrash);
                return;
            }
            interp_.start(inst);
        });
}

} // namespace specfaas
