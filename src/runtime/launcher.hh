/**
 * @file
 * Shared function-launch mechanics.
 *
 * Launching a function involves platform communication (front-end /
 * controller / worker messages — or the Sequence-Table fast path
 * under SpecFaaS), container acquisition (warm fork or cold start),
 * and handing the instance to the interpreter. Both controllers go
 * through Launcher so the Fig. 3 timing categories are recorded
 * uniformly.
 */

#ifndef SPECFAAS_RUNTIME_LAUNCHER_HH
#define SPECFAAS_RUNTIME_LAUNCHER_HH

#include <functional>
#include <string>

#include "cluster/cluster.hh"
#include "runtime/instance.hh"
#include "runtime/interpreter.hh"
#include "sim/simulation.hh"
#include "workflow/registry.hh"

namespace specfaas {

/** Everything needed to launch one function instance. */
struct LaunchSpec
{
    Symbol function;
    Value input;
    InvocationId invocation = 0;
    OrderKey order;
    FlowIndex flowNode = kFlowNone;

    /**
     * Platform cost charged before container acquisition begins:
     * platformOverhead for conventional dispatch, or
     * sequenceTableDispatch for SpecFaaS launches (§IV).
     */
    Tick preOverhead = 0;

    /**
     * Portion of preOverhead that is controller *work*: the launch
     * occupies one controller thread for this long (queueing behind
     * other launches when all threads are busy). The remainder of
     * preOverhead is pure wire latency.
     */
    Tick controllerService = 0;

    bool controlSpeculative = false;
    bool dataSpeculative = false;
    InputSource inputSource = InputSource::Actual;
    FunctionInstance* caller = nullptr;
};

/** Creates instances, acquires containers, starts the interpreter. */
class Launcher
{
  public:
    Launcher(Simulation& sim, Cluster& cluster,
             const FunctionRegistry& registry, Interpreter& interp);

    /**
     * Launch a function. The returned instance is in Launching state;
     * it transitions to Running once the container is ready. If the
     * instance is squashed before the container arrives, the
     * container is quietly returned to the pool.
     */
    InstancePtr launch(LaunchSpec spec);

    /** Total instances launched by this launcher. */
    std::uint64_t launchCount() const { return launches_; }

  private:
    /** Continue a launch after the controller station and wire time. */
    void proceedToContainer(const InstancePtr& inst,
                            std::uint64_t epoch);

    Simulation& sim_;
    Cluster& cluster_;
    const FunctionRegistry& registry_;
    Interpreter& interp_;
    std::uint64_t launches_ = 0;
};

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_LAUNCHER_HH
