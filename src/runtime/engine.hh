/**
 * @file
 * Common interface of workflow execution engines.
 *
 * Two engines implement it: the baseline conventional controller
 * (conductor-driven, strictly in-order) and the SpecFaaS speculative
 * controller. Experiment drivers and the load generator only see this
 * interface, so every benchmark runs identically against both.
 */

#ifndef SPECFAAS_RUNTIME_ENGINE_HH
#define SPECFAAS_RUNTIME_ENGINE_HH

#include <cstddef>
#include <string>

#include "common/inline_function.hh"
#include "common/types.hh"
#include "common/value.hh"
#include "workflow/workflow.hh"

namespace specfaas {

struct InvocationResult;

/** Completion callback for one end-to-end request. */
using ResultCallback = InlineFunction<void(InvocationResult), 72>;

/** Outcome and accounting of one end-to-end application request. */
struct InvocationResult
{
    InvocationId id = 0;
    std::string app;
    Tick submittedAt = 0;
    Tick completedAt = 0;

    /** Client-visible response payload. */
    Value response;

    /**
     * True when the platform rejected the request at admission
     * (control-plane overload, like OpenWhisk's 429 responses). No
     * functions executed; the response is null.
     */
    bool rejected = false;

    /** @{ Fig. 3 time categories, summed across all functions. */
    Tick containerCreation = 0;
    Tick runtimeSetup = 0;
    Tick platformOverhead = 0;
    Tick transferOverhead = 0;
    Tick execution = 0;
    /** @} */

    /** Dynamic function executions that committed. */
    std::uint32_t functionsExecuted = 0;

    /** Functions launched speculatively (SpecFaaS only). */
    std::uint32_t speculativeLaunches = 0;

    /** Squash operations performed (SpecFaaS only). */
    std::uint32_t squashes = 0;

    /** Memoization-table hits used to feed successors early. */
    std::uint32_t memoHits = 0;

    /** Branch predictions made / correct (SpecFaaS only). */
    std::uint32_t branchPredictions = 0;
    std::uint32_t branchHits = 0;

    /** End-to-end response time. */
    Tick responseTime() const { return completedAt - submittedAt; }

    /** Sequence of committed functions, in program order. */
    std::vector<std::string> executedSequence;
};

/** Asynchronous invocation interface shared by both engines. */
class WorkflowEngine
{
  public:
    virtual ~WorkflowEngine() = default;

    /**
     * Submit one request for @p app with payload @p input. @p done
     * fires when the response is produced. Multiple invocations may
     * be in flight concurrently.
     */
    virtual void invoke(const Application& app, Value input,
                        ResultCallback done) = 0;

    /** Engine name for reports. */
    virtual std::string name() const = 0;

    /** Requests in flight right now (gauge for the sampler). */
    virtual std::size_t liveInvocations() const = 0;

    /**
     * Worker node @p node just failed: crash every live handler on it
     * so the per-invocation retry machinery re-executes the work
     * elsewhere. Default no-op (fault injection disabled).
     */
    virtual void onNodeFailure(NodeId node) { (void)node; }
};

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_ENGINE_HH
