/**
 * @file
 * The runtime ↔ controller interface.
 *
 * The function runtime intercepts every externally visible operation
 * a handler issues (§VI): global-storage get/set, subroutine calls,
 * and HTTP requests. The interpreter forwards those interceptions to
 * a RuntimeHooks implementation — the baseline controller routes them
 * straight to storage / nested invocations, while the SpecFaaS
 * controller routes them through the Data Buffer and the speculative
 * call machinery.
 */

#ifndef SPECFAAS_RUNTIME_HOOKS_HH
#define SPECFAAS_RUNTIME_HOOKS_HH

#include <string>

#include "common/inline_function.hh"
#include "common/value.hh"
#include "fault/fault_types.hh"
#include "runtime/instance.hh"

namespace specfaas {

/**
 * @{ Hook completion callbacks. Small-buffer move-only callables: the
 * interpreter's continuations capture an instance pointer and a few
 * words of state, so they ride inline and the per-interception heap
 * allocation std::function used to pay is gone.
 */
using ValueCallback = InlineFunction<void(Value), 72>;
using DoneCallback = InlineFunction<void(), 72>;
/** @} */

/** Controller-side handlers for intercepted runtime operations. */
class RuntimeHooks
{
  public:
    virtual ~RuntimeHooks() = default;

    /**
     * Intercepted global-storage read. Completes asynchronously with
     * the record value (null when absent).
     */
    virtual void storageGet(const InstancePtr& inst,
                            const std::string& key,
                            ValueCallback done) = 0;

    /** Intercepted global-storage write. */
    virtual void storagePut(const InstancePtr& inst,
                            const std::string& key, Value value,
                            DoneCallback done) = 0;

    /**
     * Intercepted subroutine call (implicit workflows, §II-C). The
     * caller blocks until @p done fires with the callee's output.
     */
    virtual void functionCall(const InstancePtr& inst,
                              std::size_t call_site, Symbol callee,
                              Value args, ValueCallback done) = 0;

    /**
     * Intercepted external HTTP request (sendto, §VI). Speculative
     * instances are suspended until they turn non-speculative.
     */
    virtual void httpRequest(const InstancePtr& inst,
                             DoneCallback done) = 0;

    /** The handler finished its body and produced @p output. */
    virtual void completed(const InstancePtr& inst, Value output) = 0;

    /**
     * An injected fault killed the handler of @p inst (the runtime
     * never crashes on its own). The controller owns recovery: tear
     * the instance down, retry its pipeline coordinate with backoff,
     * and answer a deterministic error once retries are exhausted.
     * Default no-op for controllers that never run with faults.
     */
    virtual void crashed(const InstancePtr& inst, FaultKind kind)
    {
        (void)inst;
        (void)kind;
    }
};

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_HOOKS_HH
