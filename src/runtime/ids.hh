/**
 * @file
 * Default-context invocation / instance id shims.
 *
 * Id sequences are per-simulation state owned by SimContext
 * (sim/sim_context.hh): every engine draws ids through its
 * Simulation::context(), so concurrent or back-to-back simulations in
 * one process never share or leak a sequence. These free functions
 * are thin shims over the process-global default context, kept for
 * single-simulation code and tests written against the old global
 * sources.
 */

#ifndef SPECFAAS_RUNTIME_IDS_HH
#define SPECFAAS_RUNTIME_IDS_HH

#include "common/types.hh"

namespace specfaas {

/** Next invocation id from the default SimContext (starts at 1). */
InvocationId nextInvocationId();

/** Next instance id from the default SimContext (starts at 1). */
InstanceId nextInstanceId();

/** Restart the default context's sequences. Determinism tests only. */
void resetIdsForTest();

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_IDS_HH
