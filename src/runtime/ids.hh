/**
 * @file
 * Process-global invocation / instance id sources.
 *
 * Benchmarks build many FaasPlatform instances in one process (load
 * sweeps, baseline-vs-SpecFaaS pairs). Per-engine counters would
 * reuse ids across platforms, which breaks trace analysis: the trace
 * ring is process-global and uses invocation / instance ids as thread
 * tracks and join keys. Drawing from one global sequence keeps every
 * id unique for the lifetime of the process.
 *
 * Tests that assert byte-identical artifacts across repeated runs
 * reset the sequences between runs with resetIdsForTest().
 */

#ifndef SPECFAAS_RUNTIME_IDS_HH
#define SPECFAAS_RUNTIME_IDS_HH

#include "common/types.hh"

namespace specfaas {

/** Next process-unique invocation id (starts at 1). */
InvocationId nextInvocationId();

/** Next process-unique function-instance id (starts at 1). */
InstanceId nextInstanceId();

/** Restart both sequences at 1. Determinism tests only. */
void resetIdsForTest();

} // namespace specfaas

#endif // SPECFAAS_RUNTIME_IDS_HH
