#include "ids.hh"

namespace specfaas {

namespace {
InvocationId nextInvocation = 1;
InstanceId nextInstance = 1;
} // namespace

InvocationId
nextInvocationId()
{
    return nextInvocation++;
}

InstanceId
nextInstanceId()
{
    return nextInstance++;
}

void
resetIdsForTest()
{
    nextInvocation = 1;
    nextInstance = 1;
}

} // namespace specfaas
