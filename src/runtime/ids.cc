#include "ids.hh"

#include "sim/sim_context.hh"

namespace specfaas {

InvocationId
nextInvocationId()
{
    return defaultSimContext().nextInvocationId();
}

InstanceId
nextInstanceId()
{
    return defaultSimContext().nextInstanceId();
}

void
resetIdsForTest()
{
    defaultSimContext().resetIds();
}

} // namespace specfaas
