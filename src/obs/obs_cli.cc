#include "obs_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/critical_path.hh"
#include "obs/trace_export.hh"
#include "sim/sim_context.hh"

namespace specfaas::obs {

namespace {

/** Value of a "--flag=value" argument, or nullptr. */
const char*
flagValue(const char* arg, const char* flag)
{
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=')
        return nullptr;
    return arg + n + 1;
}

/** Bench name from argv[0]: basename without a "bench_" prefix. */
std::string
benchNameFromArgv0(const char* argv0)
{
    std::string name = argv0 != nullptr ? argv0 : "";
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    if (name.rfind("bench_", 0) == 0)
        name = name.substr(6);
    return name;
}

/** Default gauge-sampling period under --json-out: 10 simulated ms. */
constexpr Tick kDefaultSampleInterval = 10'000;

} // namespace

ObsSession::ObsSession(int& argc, char** argv)
{
    std::size_t capacity = TraceRecorder::kDefaultCapacity;
    Tick sampleEvery = -1; // -1: flag absent
    std::uint64_t traceSample = 1;
    int out = 1;           // argv[0] always stays
    for (int i = 1; i < argc; ++i) {
        if (const char* v = flagValue(argv[i], "--trace-out")) {
            traceOut_ = v;
            continue;
        }
        if (const char* v = flagValue(argv[i], "--trace-capacity")) {
            const auto n = static_cast<std::size_t>(
                std::strtoull(v, nullptr, 10));
            if (n == 0) {
                std::fprintf(stderr,
                             "obs: ignoring bad --trace-capacity=%s\n",
                             v);
            } else {
                capacity = n;
            }
            continue;
        }
        if (const char* v = flagValue(argv[i], "--json-out")) {
            jsonOut_ = v;
            continue;
        }
        if (const char* v = flagValue(argv[i], "--sample-interval")) {
            sampleEvery =
                static_cast<Tick>(std::strtoll(v, nullptr, 10));
            if (sampleEvery < 0) {
                std::fprintf(
                    stderr,
                    "obs: ignoring bad --sample-interval=%s\n", v);
                sampleEvery = -1;
            }
            continue;
        }
        if (const char* v = flagValue(argv[i], "--trace-sample")) {
            const auto n = std::strtoull(v, nullptr, 10);
            if (n == 0) {
                std::fprintf(stderr,
                             "obs: ignoring bad --trace-sample=%s\n",
                             v);
            } else {
                traceSample = n;
            }
            continue;
        }
        if (const char* v = flagValue(argv[i], "--profile-out")) {
            profileOut_ = v;
            profile_ = true;
            continue;
        }
        if (const char* v = flagValue(argv[i], "--profile-value")) {
            if (std::strcmp(v, "visits") == 0) {
                profileValue_ = Profiler::FoldedValue::Visits;
            } else if (std::strcmp(v, "wall") == 0) {
                profileValue_ = Profiler::FoldedValue::WallNs;
            } else if (std::strcmp(v, "allocs") == 0) {
                profileValue_ = Profiler::FoldedValue::Allocs;
            } else {
                std::fprintf(stderr,
                             "obs: ignoring bad --profile-value=%s\n",
                             v);
            }
            continue;
        }
        if (std::strcmp(argv[i], "--profile") == 0) {
            profile_ = true;
            continue;
        }
        if (std::strcmp(argv[i], "--counters") == 0) {
            printCounters_ = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;

    report_.setBenchName(benchNameFromArgv0(argv[0]));

    // The report needs the trace (critical path) and the sampler
    // archive (timelines), so --json-out implies both.
    if (!traceOut_.empty() || !jsonOut_.empty())
        context().trace().enable(capacity);
    context().trace().setSample(traceSample);
    if (profile_)
        context().profiler().enable();
    if (sampleEvery < 0)
        sampleEvery = jsonOut_.empty() ? 0 : kDefaultSampleInterval;
    context().setSampleInterval(sampleEvery);
}

SimContext&
ObsSession::context() const
{
    return defaultSimContext();
}

ObsSession::~ObsSession()
{
    TraceRecorder& tr = context().trace();
    tr.disable();
    if (!traceOut_.empty()) {
        if (writeChromeTrace(tr, traceOut_)) {
            std::printf("\ntrace: %zu events -> %s", tr.size(),
                        traceOut_.c_str());
            if (tr.dropped() > 0)
                std::printf(" (%llu oldest dropped)",
                            static_cast<unsigned long long>(
                                tr.dropped()));
            std::printf("\n");
        } else {
            std::fprintf(stderr, "trace: failed to write %s\n",
                         traceOut_.c_str());
        }
    }
    Profiler& prof = context().profiler();
    if (!jsonOut_.empty()) {
        report_.addSection("counters",
                           counterSnapshotValue(context().counters()));
        if (profile_) {
            // Deterministic zone data only (visits and counts):
            // wall time and allocations are host-dependent and would
            // break report byte-identity.
            ValueArray zones;
            for (const Profiler::ZoneRow& z : prof.zoneRows()) {
                zones.push_back(Value::object(
                    {{"name", Value(z.name)},
                     {"visits", Value(static_cast<std::int64_t>(
                                    z.visits))},
                     {"count", Value(static_cast<std::int64_t>(
                                   z.count))}}));
            }
            report_.addSection(
                "profile",
                Value::object({{"zones", Value(std::move(zones))}}));
        }
        report_.addSection("critical_path",
                           toValue(analyzeTrace(tr.snapshot())));

        const SamplerArchive& archive = context().samplerArchive();
        ValueArray series;
        for (const SampledSeries& s : archive.series())
            series.push_back(toValue(s));
        report_.addSection(
            "samplers",
            Value::object({{"series", Value(std::move(series))},
                           {"dropped",
                            Value(static_cast<std::int64_t>(
                                archive.dropped()))}}));
        report_.addSection(
            "trace",
            Value::object({{"events", Value(static_cast<std::int64_t>(
                                          tr.size()))},
                           {"dropped",
                            Value(static_cast<std::int64_t>(
                                tr.dropped()))}}));

        if (report_.writeFile(jsonOut_)) {
            std::printf("\nreport: -> %s\n", jsonOut_.c_str());
        } else {
            std::fprintf(stderr, "report: failed to write %s\n",
                         jsonOut_.c_str());
        }
    }
    if (!profileOut_.empty()) {
        if (writeFoldedProfile(prof, profileOut_, profileValue_)) {
            std::printf("\nprofile: folded -> %s\n",
                        profileOut_.c_str());
        } else {
            std::fprintf(stderr, "profile: failed to write %s\n",
                         profileOut_.c_str());
        }
    }
    if (profile_) {
        std::printf("\n-- profile (self wall time) --\n%s",
                    profileTable(prof).c_str());
    }
    if (printCounters_) {
        std::printf("\n-- counters --\n");
        context().counters().printTable();
    }
}

} // namespace specfaas::obs
