#include "obs_cli.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/counter_registry.hh"
#include "obs/trace_export.hh"
#include "obs/trace_recorder.hh"

namespace specfaas::obs {

namespace {

/** Value of a "--flag=value" argument, or nullptr. */
const char*
flagValue(const char* arg, const char* flag)
{
    const std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0 || arg[n] != '=')
        return nullptr;
    return arg + n + 1;
}

} // namespace

ObsSession::ObsSession(int& argc, char** argv)
{
    std::size_t capacity = TraceRecorder::kDefaultCapacity;
    int out = 1; // argv[0] always stays
    for (int i = 1; i < argc; ++i) {
        if (const char* v = flagValue(argv[i], "--trace-out")) {
            traceOut_ = v;
            continue;
        }
        if (const char* v = flagValue(argv[i], "--trace-capacity")) {
            const auto n = static_cast<std::size_t>(
                std::strtoull(v, nullptr, 10));
            if (n == 0) {
                std::fprintf(stderr,
                             "obs: ignoring bad --trace-capacity=%s\n",
                             v);
            } else {
                capacity = n;
            }
            continue;
        }
        if (std::strcmp(argv[i], "--counters") == 0) {
            printCounters_ = true;
            continue;
        }
        argv[out++] = argv[i];
    }
    argc = out;
    argv[argc] = nullptr;

    if (!traceOut_.empty())
        trace().enable(capacity);
}

ObsSession::~ObsSession()
{
    if (!traceOut_.empty()) {
        TraceRecorder& tr = trace();
        tr.disable();
        if (writeChromeTrace(tr, traceOut_)) {
            std::printf("\ntrace: %zu events -> %s", tr.size(),
                        traceOut_.c_str());
            if (tr.dropped() > 0)
                std::printf(" (%llu oldest dropped)",
                            static_cast<unsigned long long>(
                                tr.dropped()));
            std::printf("\n");
        } else {
            std::fprintf(stderr, "trace: failed to write %s\n",
                         traceOut_.c_str());
        }
    }
    if (printCounters_) {
        std::printf("\n-- counters --\n");
        counters().printTable();
    }
}

} // namespace specfaas::obs
