#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace specfaas::obs {

// --- LatencyHistogram ---------------------------------------------------

std::size_t
LatencyHistogram::bucketIndex(double v)
{
    if (!(v >= 1.0)) // < 1, negative, or NaN
        return 0;
    int exp = 0;
    const double frac = std::frexp(v, &exp); // v = frac * 2^exp
    // v is in [2^(exp-1), 2^exp); frac in [0.5, 1).
    const std::size_t octave = static_cast<std::size_t>(exp - 1);
    std::size_t sub = static_cast<std::size_t>(
        (frac * 2.0 - 1.0) * static_cast<double>(kSubBuckets));
    if (sub >= kSubBuckets)
        sub = kSubBuckets - 1;
    return 1 + octave * kSubBuckets + sub;
}

double
LatencyHistogram::bucketLower(std::size_t idx)
{
    if (idx == 0)
        return 0.0;
    const std::size_t octave = (idx - 1) / kSubBuckets;
    const std::size_t sub = (idx - 1) % kSubBuckets;
    return std::ldexp(1.0 + static_cast<double>(sub) /
                                static_cast<double>(kSubBuckets),
                      static_cast<int>(octave));
}

void
LatencyHistogram::add(double v)
{
    const std::size_t idx = bucketIndex(v);
    if (idx >= counts_.size())
        counts_.resize(idx + 1, 0);
    ++counts_[idx];
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
LatencyHistogram::merge(const LatencyHistogram& other)
{
    if (other.count_ == 0)
        return;
    if (other.counts_.size() > counts_.size())
        counts_.resize(other.counts_.size(), 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
LatencyHistogram::mean() const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return sum_ / static_cast<double>(count_);
}

double
LatencyHistogram::min() const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return min_;
}

double
LatencyHistogram::max() const
{
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return max_;
}

double
LatencyHistogram::percentile(double p) const
{
    SPECFAAS_ASSERT(p >= 0.0 && p <= 100.0, "percentile %f out of range",
                    p);
    if (count_ == 0)
        return std::numeric_limits<double>::quiet_NaN();

    // Rank of the requested percentile (1-based, ceil convention).
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        const std::uint64_t prev = cum;
        cum += counts_[i];
        if (static_cast<double>(cum) < target)
            continue;
        // Interpolate linearly within [lower, upper) by the fraction
        // of the bucket's population below the target rank.
        const double lower = bucketLower(i);
        const double upper = bucketLower(i + 1);
        const double within =
            (target - static_cast<double>(prev)) /
            static_cast<double>(counts_[i]);
        const double est = lower + (upper - lower) *
                                       std::clamp(within, 0.0, 1.0);
        return std::clamp(est, min_, max_);
    }
    return max_;
}

std::vector<LatencyHistogram::Bucket>
LatencyHistogram::buckets() const
{
    std::vector<Bucket> out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        out.push_back(Bucket{bucketLower(i), bucketLower(i + 1),
                             counts_[i]});
    }
    return out;
}

// --- TimeSeriesSampler --------------------------------------------------

TimeSeriesSampler::TimeSeriesSampler(EventQueue& events, Tick interval,
                                     std::size_t maxSamples)
    : events_(events), interval_(interval), maxSamples_(maxSamples)
{
    SPECFAAS_ASSERT(interval_ > 0, "sampler interval must be positive");
    SPECFAAS_ASSERT(maxSamples_ >= 2, "sampler needs >= 2 samples");
}

TimeSeriesSampler::~TimeSeriesSampler()
{
    stop();
}

void
TimeSeriesSampler::addGauge(std::string name, std::function<double()> fn)
{
    SPECFAAS_ASSERT(times_.empty(),
                    "gauges must be registered before sampling starts");
    Gauge g;
    g.name = std::move(name);
    g.fn = std::move(fn);
    gauges_.push_back(std::move(g));
}

void
TimeSeriesSampler::start()
{
    SPECFAAS_ASSERT(pending_ == 0, "sampler already started");
    fire();
}

void
TimeSeriesSampler::stop()
{
    if (pending_ != 0) {
        events_.cancel(pending_);
        pending_ = 0;
    }
}

void
TimeSeriesSampler::fire()
{
    if (times_.size() >= maxSamples_)
        compact();

    times_.push_back(events_.now());
    for (Gauge& g : gauges_) {
        const double v = g.fn();
        g.series.push_back(v);
        if (g.count == 0) {
            g.min = v;
            g.max = v;
        } else {
            g.min = std::min(g.min, v);
            g.max = std::max(g.max, v);
        }
        ++g.count;
        g.sum += v;
        g.last = v;
    }
    ++observations_;

    pending_ = events_.scheduleDaemon(interval_, [this] { fire(); });
}

void
TimeSeriesSampler::compact()
{
    // Keep even-indexed samples, halving resolution; the doubled
    // interval keeps future samples on the coarser grid.
    std::size_t out = 0;
    for (std::size_t i = 0; i < times_.size(); i += 2, ++out) {
        times_[out] = times_[i];
        for (Gauge& g : gauges_)
            g.series[out] = g.series[i];
    }
    times_.resize(out);
    for (Gauge& g : gauges_)
        g.series.resize(out);
    interval_ *= 2;
}

const std::string&
TimeSeriesSampler::gaugeName(std::size_t g) const
{
    SPECFAAS_ASSERT(g < gauges_.size(), "gauge index out of range");
    return gauges_[g].name;
}

const std::vector<double>&
TimeSeriesSampler::gaugeSeries(std::size_t g) const
{
    SPECFAAS_ASSERT(g < gauges_.size(), "gauge index out of range");
    return gauges_[g].series;
}

TimeSeriesSampler::GaugeStats
TimeSeriesSampler::gaugeStats(std::size_t g) const
{
    SPECFAAS_ASSERT(g < gauges_.size(), "gauge index out of range");
    const Gauge& gauge = gauges_[g];
    GaugeStats s;
    s.count = gauge.count;
    if (gauge.count > 0) {
        s.min = gauge.min;
        s.max = gauge.max;
        s.mean = gauge.sum / static_cast<double>(gauge.count);
        s.last = gauge.last;
    }
    return s;
}

// --- SamplerArchive -----------------------------------------------------

void
SamplerArchive::deposit(const TimeSeriesSampler& sampler,
                        std::string label)
{
    if (series_.size() >= kMaxSeries) {
        ++dropped_;
        return;
    }
    SampledSeries s;
    s.label = std::move(label);
    s.interval = sampler.interval();
    s.observations = sampler.observations();
    s.times = sampler.times();
    for (std::size_t g = 0; g < sampler.gaugeCount(); ++g) {
        s.gaugeNames.push_back(sampler.gaugeName(g));
        s.values.push_back(sampler.gaugeSeries(g));
        s.stats.push_back(sampler.gaugeStats(g));
    }
    series_.push_back(std::move(s));
}

void
SamplerArchive::deposit(SampledSeries series)
{
    if (series_.size() >= kMaxSeries) {
        ++dropped_;
        return;
    }
    series_.push_back(std::move(series));
}

void
SamplerArchive::absorb(const SamplerArchive& other)
{
    for (const SampledSeries& s : other.series_)
        deposit(s);
    dropped_ += other.dropped_;
}

void
SamplerArchive::clear()
{
    series_.clear();
    dropped_ = 0;
}

// samplerArchive() / sampleInterval() / setSampleInterval() — the
// default-context shims — are defined in sim/sim_context.cc.

} // namespace specfaas::obs
