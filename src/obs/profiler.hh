/**
 * @file
 * Deterministic self-profiling: scoped zones over a static site
 * registry.
 *
 * The external-SIGPROF workflow that diagnosed the PR-5 wall (see
 * EXPERIMENTS.md "Engine throughput") could say "the remainder is
 * diffuse" but not *where* the diffusion lives, and its output was
 * neither reproducible nor CI-gateable. This profiler makes the
 * engine measure itself:
 *
 *     void SpecController::walk(...) {
 *         OBS_ZONE(profiler_, "spec/walk");
 *         ...
 *     }
 *
 * Each OBS_ZONE site is interned once into a process-global registry
 * (zones with the same label aggregate, wherever they appear) and the
 * RAII scope records into the *per-simulation* Profiler owned by
 * SimContext, so parallel sweeps stay isolated and merge in
 * submission order exactly like trace events and counters.
 *
 * Every zone records two kinds of data:
 *
 *  - deterministic: visit counts and caller-attributed extra counts
 *    (ticks, slots, rows — whatever the site adds via addCount()).
 *    These are byte-reproducible across runs and job counts, land in
 *    the JSON report's "profile" section, and are CI-gated.
 *  - host-side: wall-clock nanoseconds and heap allocations (when a
 *    counting operator new registers itself via setAllocSource()).
 *    These rank the self-time table and the folded flamegraph output
 *    for humans and are never part of a deterministic artifact.
 *
 * Zones nest: the profiler maintains a path tree (root → enclosing
 * zones → leaf), so self time falls out as a node's inclusive time
 * minus its children's, and recursion cannot double-count — a zone
 * re-entered under itself is a distinct path node whose time is
 * already contained in the outer node's inclusive total.
 *
 * Cost: one predictable branch per scope while disabled (the scope
 * captures nullptr and the destructor tests it); roughly two clock
 * reads plus a cached child-path lookup while enabled.
 */

#ifndef SPECFAAS_OBS_PROFILER_HH
#define SPECFAAS_OBS_PROFILER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace specfaas::obs {

/**
 * Intern @p name into the process-global zone-site registry and
 * return its stable site id. Thread-safe; sites with the same name
 * map to the same id. Call once per call site (the OBS_ZONE macro
 * does this with a function-local static).
 */
std::uint32_t internZoneSite(const char* name);

/** Name of a registered site id. */
const std::string& zoneSiteName(std::uint32_t site);

/** Number of registered sites (diagnostics/tests). */
std::size_t zoneSiteCount();

/** Per-simulation zone profiler; one instance lives in SimContext. */
class Profiler
{
  public:
    /** How folded (collapsed-stack) output values one stack line. */
    enum class FoldedValue
    {
        Visits, ///< deterministic visit counts (byte-reproducible)
        WallNs, ///< self wall-clock nanoseconds (host-dependent)
        Allocs, ///< self heap allocations (needs setAllocSource)
    };

    /** One stack path with its recorded totals. */
    struct PathRow
    {
        /** Zone names, outermost first. */
        std::vector<std::string> stack;
        std::uint64_t visits = 0;
        std::uint64_t count = 0;  ///< caller-attributed, deterministic
        std::uint64_t wallNs = 0; ///< inclusive at this path
        std::uint64_t selfNs = 0; ///< wallNs minus children's wallNs
        std::uint64_t allocs = 0; ///< inclusive at this path
        std::uint64_t selfAllocs = 0;
    };

    /** Per-zone aggregate across every path the zone appears in. */
    struct ZoneRow
    {
        std::string name;
        std::uint64_t visits = 0;
        std::uint64_t count = 0;
        std::uint64_t selfNs = 0;
        /**
         * Inclusive time, counted only at a zone's outermost
         * occurrence on each path so recursion is not double-counted.
         */
        std::uint64_t totalNs = 0;
        std::uint64_t selfAllocs = 0;
        std::uint64_t totalAllocs = 0;
    };

    Profiler() = default;
    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    /** Start recording (drops previously recorded data). */
    void enable();

    /**
     * Stop recording. Scopes still open keep a pointer to this
     * profiler and will call exit() on destruction; exit() on a
     * disabled/empty profiler is a safe no-op, and the open frames
     * are discarded here so no partial spans survive.
     */
    void disable();

    /** True while zones are being recorded. Hot-path check. */
    bool enabled() const { return enabled_; }

    /** Drop all recorded data (registry stays interned). */
    void clear();

    /** True when at least one zone entry has been recorded. */
    bool hasData() const;

    /** @{ Hot path, called by ZoneScope. */
    void enter(std::uint32_t site);
    void exit();
    /** Add @p n to the current zone's deterministic count. */
    void addCount(std::uint64_t n)
    {
        if (current_ != 0)
            stats_[current_].count += n;
    }
    /** @} */

    /** Paths sorted by stack names (deterministic order). */
    std::vector<PathRow> pathRows() const;

    /** Zone aggregates sorted by name (deterministic order). */
    std::vector<ZoneRow> zoneRows() const;

    /**
     * Accumulate this profiler's recorded paths into @p dst
     * (creating path nodes there as needed). Merging a batch of task
     * profilers in submission order reproduces exactly the totals a
     * serial run would have recorded, so every deterministic output
     * is byte-identical at any job count.
     */
    void mergeInto(Profiler& dst) const;

    /**
     * Test hook: replace the wall clock with @p fn (nullptr restores
     * the real clock). Per-profiler, so tests stay isolated.
     */
    using ClockFn = std::uint64_t (*)();
    void setClockForTest(ClockFn fn) { clock_ = fn; }

    /**
     * Register the process-wide allocation counter the profiler reads
     * around each zone (a bench's counting operator new). Null (the
     * default) records zero allocations. Not owned.
     */
    static void setAllocSource(const std::atomic<std::uint64_t>* src);

  private:
    /** Path-tree node; node 0 is the root (no site). */
    struct Node
    {
        std::uint32_t parent;
        std::uint32_t site;
    };

    /** Recorded totals of one path node. */
    struct Stats
    {
        std::uint64_t visits = 0;
        std::uint64_t count = 0;
        std::uint64_t wallNs = 0;
        std::uint64_t allocs = 0;
    };

    /** One open scope. */
    struct Frame
    {
        std::uint32_t path;
        std::uint64_t startNs;
        std::uint64_t startAllocs;
    };

    std::uint64_t nowNs() const;
    std::uint64_t allocsNow() const;
    std::uint32_t childPathFor(std::uint32_t parent,
                               std::uint32_t site);

    bool enabled_ = false;
    ClockFn clock_ = nullptr;
    std::uint32_t current_ = 0; ///< path node of the innermost zone
    std::vector<Frame> stack_;
    std::vector<Node> nodes_{{0, 0}};
    std::vector<Stats> stats_{{}};
    /** (parent << 32 | site) → path node. */
    std::unordered_map<std::uint64_t, std::uint32_t> edges_;
    /** Per-site monomorphic {parent, node} cache for enter(). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> siteCache_;
};

/**
 * RAII zone scope. Captures the profiler only when it is enabled at
 * entry, so both construction and destruction cost one predictable
 * branch on a non-profiled run.
 */
class ZoneScope
{
  public:
    ZoneScope(Profiler& p, std::uint32_t site)
        : prof_(p.enabled() ? &p : nullptr)
    {
        if (prof_ != nullptr)
            prof_->enter(site);
    }

    /** Null-tolerant overload for layers holding an optional pointer. */
    ZoneScope(Profiler* p, std::uint32_t site)
        : prof_(p != nullptr && p->enabled() ? p : nullptr)
    {
        if (prof_ != nullptr)
            prof_->enter(site);
    }

    ~ZoneScope()
    {
        if (prof_ != nullptr)
            prof_->exit();
    }

    ZoneScope(const ZoneScope&) = delete;
    ZoneScope& operator=(const ZoneScope&) = delete;

    /** Add @p n to this zone's deterministic count. */
    void addCount(std::uint64_t n)
    {
        if (prof_ != nullptr)
            prof_->addCount(n);
    }

  private:
    Profiler* prof_;
};

/**
 * Render the profile as collapsed-stack "folded" text, one line per
 * path — `outer;inner <value>` — sorted lexicographically by path.
 * The format is what flamegraph.pl and speedscope consume directly.
 * Frame names are backslash-escaped (`;`, spaces, tabs, newlines and
 * `\` itself), so a zone name containing the frame or value
 * separator cannot corrupt the line structure; names without special
 * characters render byte-identically to the unescaped form.
 * Visits-valued output is byte-deterministic (and job-count
 * independent under the ordered merge); WallNs/Allocs output is for
 * human flamegraphs. Zero-valued paths are kept so a visits-valued
 * file always lists every path that was entered.
 */
std::string foldedProfile(const Profiler& p,
                          Profiler::FoldedValue value);

/** Write foldedProfile() to @p path. @return false on IO error. */
bool writeFoldedProfile(const Profiler& p, const std::string& path,
                        Profiler::FoldedValue value);

/**
 * Parse folded text back into (path, value) pairs in line order.
 * Paths are returned in their escaped on-disk form (escaping is the
 * identity for names without special characters). Input with raw
 * whitespace in a path, an unknown or dangling escape, a missing
 * value, or an empty path is rejected — a path that needed escaping
 * but wasn't is corruption, not data.
 * @return false on malformed input
 */
bool parseFolded(
    const std::string& text,
    std::vector<std::pair<std::string, std::uint64_t>>& out);

/** Self-time table (zoneRows ranked by self wall time) as text. */
std::string profileTable(const Profiler& p);

/**
 * The default SimContext's profiler (single-sim shim; defined in
 * sim/sim_context.cc). Engine layers record through their
 * Simulation::context().profiler() instead; this accessor serves
 * session-level code (ObsSession) and tests.
 */
Profiler& profiler();

} // namespace specfaas::obs

// clang-format off
#define SPECFAAS_OBS_CONCAT2(a, b) a##b
#define SPECFAAS_OBS_CONCAT(a, b) SPECFAAS_OBS_CONCAT2(a, b)
// clang-format on

/**
 * Named scoped zone: `OBS_ZONE_SCOPE(z, prof, "spec/walk");` declares
 * zone variable @p var so the site can add deterministic counts via
 * `var.addCount(n)`.
 */
#define OBS_ZONE_SCOPE(var, prof, name)                                \
    static const std::uint32_t SPECFAAS_OBS_CONCAT(obsZoneSite_,       \
                                                   __LINE__) =         \
        ::specfaas::obs::internZoneSite(name);                         \
    ::specfaas::obs::ZoneScope var(                                    \
        (prof), SPECFAAS_OBS_CONCAT(obsZoneSite_, __LINE__))

/** Anonymous scoped zone covering the rest of the enclosing block. */
#define OBS_ZONE(prof, name)                                           \
    OBS_ZONE_SCOPE(SPECFAAS_OBS_CONCAT(obsZoneScope_, __LINE__),       \
                   prof, name)

#endif // SPECFAAS_OBS_PROFILER_HH
