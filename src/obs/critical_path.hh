/**
 * @file
 * Trace-driven latency decomposition and wasted-work attribution.
 *
 * analyzeTrace() replays a recorded event stream (the same events the
 * Chrome trace export writes) and, per end-to-end invocation, tiles
 * the interval [submit, complete] into exclusive segments:
 *
 *   queueing            launch accepted, waiting for a container slot
 *   containerCreation   cold-start container creation (Fig. 3)
 *   runtimeSetup        language runtime boot inside the container
 *   execution           handler bodies running on worker cores
 *   stallRead           parked by the squash minimizer (§V-C)
 *   validation          completed, waiting for input validation/commit
 *   commitWait          no committed instance active (control-plane
 *                       gaps: conductor hops, commit ordering, wire)
 *
 * Overlapping activity (parallel fan-out stages) is resolved by
 * priority — execution wins over its own overheads, overheads win
 * over queueing — so the segments of one invocation always sum
 * exactly to its measured end-to-end latency.
 *
 * The same pass attributes *wasted* speculative work: execution ticks
 * of squashed instances, grouped by squash reason and by cascade
 * depth (a squash triggered while processing another squash is depth
 * 2, and so on). This extends the paper's Fig. 12 squash counts to
 * time actually burned.
 */

#ifndef SPECFAAS_OBS_CRITICAL_PATH_HH
#define SPECFAAS_OBS_CRITICAL_PATH_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "obs/trace_event.hh"

namespace specfaas::obs {

/** Exclusive per-invocation time segments, in Ticks. */
struct SegmentBreakdown
{
    Tick queueing = 0;
    Tick containerCreation = 0;
    Tick runtimeSetup = 0;
    Tick execution = 0;
    Tick stallRead = 0;
    Tick validation = 0;
    Tick commitWait = 0;

    Tick total() const
    {
        return queueing + containerCreation + runtimeSetup + execution +
               stallRead + validation + commitWait;
    }

    void add(const SegmentBreakdown& o);
};

/** One analyzed end-to-end invocation. */
struct InvocationPath
{
    InvocationId id = 0;
    std::string app;
    Tick submittedAt = 0;
    Tick completedAt = 0;
    SegmentBreakdown segments;
    std::size_t committedInstances = 0;

    Tick latency() const { return completedAt - submittedAt; }
};

/** Useful vs squashed execution time (speculation efficiency). */
struct WastedWork
{
    /** Execution ticks of instances that committed. */
    Tick usefulTicks = 0;
    /** Execution ticks of instances that were squashed. */
    Tick wastedTicks = 0;
    std::uint64_t committedInstances = 0;
    std::uint64_t squashedInstances = 0;

    /** Wasted ticks / squash count per SquashReason name. */
    std::map<std::string, Tick> wastedByReason;
    std::map<std::string, std::uint64_t> squashesByReason;

    /**
     * Wasted ticks by squash-cascade depth: depth 1 is a root squash,
     * depth 2 a squash issued while processing a depth-1 squash, ...
     */
    std::map<int, Tick> wastedByDepth;

    /** Fraction of all execution ticks that was wasted; NaN if none. */
    double wastedFraction() const;
};

/** Per-application aggregate of InvocationPath segments. */
struct AppPathSummary
{
    std::size_t invocations = 0;
    SegmentBreakdown totals; ///< summed over the app's invocations
};

/** Everything analyzeTrace() extracts from one recorded run. */
struct CriticalPathReport
{
    std::vector<InvocationPath> invocations;
    /** Segment sums over all analyzed invocations. */
    SegmentBreakdown totals;
    std::map<std::string, AppPathSummary> perApp;
    WastedWork speculation;

    /** Requests rejected at admission (not analyzed). */
    std::uint64_t rejectedInvocations = 0;
    /**
     * Invocations skipped because their events were incomplete
     * (typically overwritten in the ring buffer).
     */
    std::uint64_t incompleteInvocations = 0;

    /** Printable per-app latency breakdown + speculation summary. */
    std::string table() const;
    void printTable() const;
};

/**
 * Analyze a recorded event stream (TraceRecorder::snapshot() order:
 * oldest first). Tolerates truncated streams: invocations whose
 * events were partially dropped are counted, not analyzed.
 */
CriticalPathReport analyzeTrace(const std::vector<TraceEvent>& events);

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_CRITICAL_PATH_HH
