#include "trace_export.hh"

#include <cstdio>
#include <set>

#include "common/logging.hh"

namespace specfaas::obs {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

namespace {

void
appendArgs(std::string& out, const std::vector<TraceArg>& args)
{
    out += "\"args\":{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0)
            out += ',';
        out += '"';
        out += jsonEscape(args[i].key);
        out += "\":";
        if (args[i].numeric) {
            out += args[i].value;
        } else {
            out += '"';
            out += jsonEscape(args[i].value);
            out += '"';
        }
    }
    out += '}';
}

void
appendEvent(std::string& out, const TraceEvent& e)
{
    out += strFormat("{\"ph\":\"%c\",\"cat\":\"%s\",\"name\":\"",
                     static_cast<char>(e.phase), e.category);
    out += jsonEscape(e.name);
    out += strFormat("\",\"ts\":%lld,\"pid\":%llu,\"tid\":%llu,",
                     static_cast<long long>(e.ts),
                     static_cast<unsigned long long>(e.pid),
                     static_cast<unsigned long long>(e.tid));
    appendArgs(out, e.args);
    out += '}';
}

void
appendProcessName(std::string& out, std::uint64_t pid,
                  const std::string& name)
{
    out += strFormat("{\"ph\":\"M\",\"name\":\"process_name\","
                     "\"pid\":%llu,\"tid\":0,\"args\":{\"name\":\"",
                     static_cast<unsigned long long>(pid));
    out += jsonEscape(name);
    out += "\"}}";
}

} // namespace

std::string
toChromeTraceJson(const std::vector<TraceEvent>& events)
{
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

    std::set<std::uint64_t> pids;
    for (const auto& e : events)
        pids.insert(e.pid);
    bool first = true;
    for (std::uint64_t pid : pids) {
        if (!first)
            out += ',';
        first = false;
        appendProcessName(out, pid,
                          pid == kControlPlanePid
                              ? "control-plane"
                              : strFormat("node-%llu",
                                          static_cast<unsigned long long>(
                                              pid - 1)));
    }
    for (const auto& e : events) {
        if (!first)
            out += ',';
        first = false;
        appendEvent(out, e);
    }
    out += "]}";
    return out;
}

bool
writeChromeTrace(const TraceRecorder& recorder, const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string json = toChromeTraceJson(recorder.snapshot());
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) ==
                    json.size();
    std::fclose(f);
    return ok;
}

} // namespace specfaas::obs
