/**
 * @file
 * Chrome trace_event JSON exporter.
 *
 * Serializes recorded events into the JSON Array Format understood by
 * chrome://tracing and Perfetto (ui.perfetto.dev): each event becomes
 * one object with ph/cat/name/ts/pid/tid/args, plus process_name
 * metadata events naming the control plane and worker-node tracks.
 * Timestamps are already in microseconds (1 Tick = 1 µs), the unit the
 * format expects.
 */

#ifndef SPECFAAS_OBS_TRACE_EXPORT_HH
#define SPECFAAS_OBS_TRACE_EXPORT_HH

#include <string>
#include <vector>

#include "obs/trace_event.hh"
#include "obs/trace_recorder.hh"

namespace specfaas::obs {

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/** Render @p events as a Chrome trace_event JSON document. */
std::string toChromeTraceJson(const std::vector<TraceEvent>& events);

/**
 * Write @p recorder's buffered events to @p path as Chrome trace
 * JSON. @return false when the file cannot be opened.
 */
bool writeChromeTrace(const TraceRecorder& recorder,
                      const std::string& path);

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_TRACE_EXPORT_HH
