/**
 * @file
 * Named counters and gauges.
 *
 * Replaces the ad-hoc tally structs scattered through the execution
 * engines with one queryable registry. Hot paths register a counter
 * once and increment through the returned reference (references are
 * stable: storage is a node-based map), so steady-state cost is a
 * single integer increment.
 *
 * Each SimContext owns one registry aggregating across the platform
 * instances of its simulation: engines merge their per-run registries
 * into it on destruction, which is what the bench binaries print
 * under --counters. obs::counters() is the default context's
 * registry, for single-simulation binaries and tests.
 */

#ifndef SPECFAAS_OBS_COUNTER_REGISTRY_HH
#define SPECFAAS_OBS_COUNTER_REGISTRY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace specfaas::obs {

/** Registry of named monotonic counters and point-in-time gauges. */
class CounterRegistry
{
  public:
    /**
     * The counter named @p name, created at zero on first use. The
     * returned reference stays valid for the registry's lifetime.
     */
    std::uint64_t& counter(const std::string& name);

    /** The gauge named @p name, created at zero on first use. */
    double& gauge(const std::string& name);

    /** Add @p delta to the counter named @p name. */
    void add(const std::string& name, std::uint64_t delta);

    /** Set the gauge named @p name to @p value. */
    void set(const std::string& name, double value);

    /** Counter value, 0 when absent (no entry is created). */
    std::uint64_t value(const std::string& name) const;

    /** All entries as (name, value), counters first, each sorted. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /** Number of registered counters + gauges. */
    std::size_t entryCount() const
    {
        return counters_.size() + gauges_.size();
    }

    /** Accumulate every entry of this registry into @p dst. */
    void mergeInto(CounterRegistry& dst) const;

    /** Render as an aligned two-column table. */
    std::string table() const;

    /** Render and write to stdout. */
    void printTable() const;

    /** Drop all entries. */
    void clear();

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
};

/**
 * The default SimContext's registry (single-sim shim; defined in
 * sim/sim_context.cc). Engines merge into their own
 * Simulation::context() registry on teardown; this accessor serves
 * session-level code and tests.
 */
CounterRegistry& counters();

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_COUNTER_REGISTRY_HH
