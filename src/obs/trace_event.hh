/**
 * @file
 * Typed trace events of the observability layer.
 *
 * Every interesting moment of a run — dispatch, branch prediction,
 * speculative launch, memo hit, Data Buffer forward, validation,
 * commit, squash, container cold-start — is recorded as one TraceEvent
 * stamped with the simulated-tick clock. The taxonomy intentionally
 * mirrors the Chrome trace_event format so exporting is a straight
 * mapping: spans are Begin/End pairs, point events are Instants, and
 * the (pid, tid) pair places an event on a track (one pid per node,
 * one tid per container/invocation/instance).
 */

#ifndef SPECFAAS_OBS_TRACE_EVENT_HH
#define SPECFAAS_OBS_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace specfaas::obs {

/** Chrome trace_event phase of one event. */
enum class Phase : char {
    Begin = 'B',   ///< span start (paired with End on the same track)
    End = 'E',     ///< span end
    Instant = 'i', ///< point event
};

/** Well-known event categories (static strings, no allocation). */
namespace cat {
inline constexpr const char* kPlatform = "platform";
inline constexpr const char* kLifecycle = "lifecycle";
inline constexpr const char* kExec = "exec";
inline constexpr const char* kContainer = "container";
inline constexpr const char* kStorage = "storage";
inline constexpr const char* kSpec = "spec";
inline constexpr const char* kBaseline = "baseline";
inline constexpr const char* kFault = "fault";
inline constexpr const char* kFleet = "fleet";
} // namespace cat

/**
 * Track ids. pid 0 is the control plane (controller/front-end); worker
 * node n is pid n+1. tids are instance ids for function work,
 * invocation ids for controller decisions, and container ids offset by
 * kContainerTidBase for container provisioning.
 */
inline constexpr std::uint64_t kControlPlanePid = 0;
inline constexpr std::uint64_t kContainerTidBase = 1'000'000'000ull;

inline constexpr std::uint64_t
nodePid(std::uint32_t node)
{
    return static_cast<std::uint64_t>(node) + 1;
}

/** One key/value annotation attached to an event. */
struct TraceArg
{
    std::string key;
    std::string value;
    /** Render as a bare number instead of a JSON string. */
    bool numeric = false;
};

/** One recorded event. */
struct TraceEvent
{
    Phase phase = Phase::Instant;
    const char* category = cat::kPlatform;
    std::string name;
    /** Simulated time, in Ticks (µs) — maps directly to trace "ts". */
    Tick ts = 0;
    std::uint64_t pid = kControlPlanePid;
    std::uint64_t tid = 0;
    std::vector<TraceArg> args;
};

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_TRACE_EVENT_HH
