/**
 * @file
 * Bounded-memory metric aggregation for benchmarks.
 *
 * Two pieces:
 *
 *  - LatencyHistogram: a log-bucketed (HDR-style) histogram with
 *    percentile queries. Bench loops that used to retain every
 *    response time in a raw vector record into one of these instead;
 *    memory is O(log(range)) and percentiles stay within one
 *    sub-bucket (~6% relative error at 16 sub-buckets per octave).
 *
 *  - TimeSeriesSampler: samples named gauges (in-flight invocations,
 *    warm-pool occupancy, busy cores, outstanding speculative
 *    instances) on a fixed simulated-time cadence. It self-reschedules
 *    with EventQueue::scheduleDaemon so it never keeps a run alive,
 *    and when its sample buffer fills it halves the resolution (drop
 *    every other sample, double the interval) instead of growing —
 *    the whole run is always covered at bounded memory.
 *
 * Finished samplers deposit their series into a process-global
 * SamplerArchive so the JSON run report can include utilization
 * timelines after the platforms that produced them are destroyed.
 */

#ifndef SPECFAAS_OBS_HISTOGRAM_HH
#define SPECFAAS_OBS_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/event_queue.hh"

namespace specfaas::obs {

/**
 * Log-bucketed histogram for non-negative quantities (latencies in
 * ticks or milliseconds). Values below 1 share an underflow bucket;
 * above that, each power-of-two octave is split into kSubBuckets
 * geometrically-placed buckets.
 */
class LatencyHistogram
{
  public:
    /** Sub-buckets per power-of-two octave (relative error ~1/16). */
    static constexpr std::size_t kSubBuckets = 16;

    /** Record one observation. Negative/NaN clamp to the 0-bucket. */
    void add(double v);

    /** Accumulate another histogram into this one. */
    void merge(const LatencyHistogram& other);

    /** Number of observations. */
    std::uint64_t count() const { return count_; }
    /** Sum of observations (exact, not bucketed). */
    double sum() const { return sum_; }
    /** Mean of observations; NaN when empty. */
    double mean() const;
    /** Exact minimum observation; NaN when empty. */
    double min() const;
    /** Exact maximum observation; NaN when empty. */
    double max() const;

    /**
     * Percentile estimate by linear interpolation within the bucket
     * holding the requested rank, clamped to [min, max]. NaN when
     * empty. @param p percentile in [0, 100]
     */
    double percentile(double p) const;

    /** One non-empty bucket: [lower, upper) and its count. */
    struct Bucket
    {
        double lower;
        double upper;
        std::uint64_t count;
    };

    /** Non-empty buckets in ascending value order. */
    std::vector<Bucket> buckets() const;

  private:
    static std::size_t bucketIndex(double v);
    static double bucketLower(std::size_t idx);

    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Periodic gauge sampler driven by the simulation's EventQueue.
 *
 * Register gauges before start(); each firing appends one row of
 * gauge values at the current simulated time. The sampler schedules
 * itself as a daemon event, so EventQueue::run() still returns when
 * real work drains. At capacity the buffer is compacted: every other
 * sample is dropped and the interval doubles, keeping memory bounded
 * while the series always spans the whole run.
 */
class TimeSeriesSampler
{
  public:
    static constexpr std::size_t kDefaultMaxSamples = 4096;

    /**
     * @param events queue that drives the cadence
     * @param interval sampling period in ticks (> 0)
     * @param maxSamples compaction threshold (>= 2)
     */
    TimeSeriesSampler(EventQueue& events, Tick interval,
                      std::size_t maxSamples = kDefaultMaxSamples);
    ~TimeSeriesSampler();

    TimeSeriesSampler(const TimeSeriesSampler&) = delete;
    TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

    /** Register a gauge; only valid before the first sample. */
    void addGauge(std::string name, std::function<double()> fn);

    /** Take the first sample now and begin the periodic cadence. */
    void start();

    /** Cancel the pending tick; series data stays readable. */
    void stop();

    /** Current sampling period (doubles on each compaction). */
    Tick interval() const { return interval_; }

    /** Total samples taken, including compacted-away ones. */
    std::uint64_t observations() const { return observations_; }

    /** Sample timestamps currently retained. */
    const std::vector<Tick>& times() const { return times_; }

    std::size_t gaugeCount() const { return gauges_.size(); }
    const std::string& gaugeName(std::size_t g) const;
    /** Retained series for gauge @p g, aligned with times(). */
    const std::vector<double>& gaugeSeries(std::size_t g) const;

    /** Whole-run summary of one gauge (unaffected by compaction). */
    struct GaugeStats
    {
        std::uint64_t count = 0;
        double min = 0.0;
        double max = 0.0;
        double mean = 0.0;
        double last = 0.0;
    };
    GaugeStats gaugeStats(std::size_t g) const;

  private:
    struct Gauge
    {
        std::string name;
        std::function<double()> fn;
        std::vector<double> series;
        std::uint64_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        double last = 0.0;
    };

    void fire();
    void compact();

    EventQueue& events_;
    Tick interval_;
    std::size_t maxSamples_;
    EventId pending_ = 0;
    std::uint64_t observations_ = 0;
    std::vector<Tick> times_;
    std::vector<Gauge> gauges_;
};

/** One finished sampler's data, copied out for the run report. */
struct SampledSeries
{
    std::string label;             ///< platform / experiment label
    Tick interval = 0;             ///< final (post-compaction) period
    std::uint64_t observations = 0;
    std::vector<std::string> gaugeNames;
    std::vector<Tick> times;
    /** values[gauge][sample], aligned with times. */
    std::vector<std::vector<double>> values;
    std::vector<TimeSeriesSampler::GaugeStats> stats;
};

/**
 * Process-global store of finished sampler series. Platforms deposit
 * on teardown; the JSON report reads them at exit. Bounded: deposits
 * beyond kMaxSeries are counted but not stored (benches may build
 * dozens of platforms across load sweeps).
 */
class SamplerArchive
{
  public:
    static constexpr std::size_t kMaxSeries = 32;

    /** Copy @p sampler's series into the archive under @p label. */
    void deposit(const TimeSeriesSampler& sampler, std::string label);

    /** Append one already-extracted series (archive merges). */
    void deposit(SampledSeries series);

    /**
     * Append @p other's series in their deposit order, subject to
     * this archive's cap; @p other's dropped count carries over.
     */
    void absorb(const SamplerArchive& other);

    const std::vector<SampledSeries>& series() const { return series_; }
    /** Deposits rejected because the archive was full. */
    std::uint64_t dropped() const { return dropped_; }

    void clear();

  private:
    std::vector<SampledSeries> series_;
    std::uint64_t dropped_ = 0;
};

/** The default SimContext's sampler archive (single-sim shim). */
SamplerArchive& samplerArchive();

/**
 * The default SimContext's sampling period in ticks; 0 (the default)
 * disables gauge sampling. FaasPlatform reads its own context's
 * interval at construction; ObsSession sets this one from
 * --sample-interval. Per-simulation state lives in SimContext
 * (sim/sim_context.hh); these shims serve single-simulation binaries.
 */
Tick sampleInterval();
void setSampleInterval(Tick interval);

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_HISTOGRAM_HH
