/**
 * @file
 * Machine-readable run reports.
 *
 * Every bench binary can emit a schema-versioned JSON report
 * (--json-out=<file>) holding the run configuration, headline
 * metrics, latency histograms, the counter snapshot, the trace-driven
 * critical-path breakdown, and sampled utilization timelines. Reports
 * are byte-deterministic for a fixed seed — no wall-clock timestamps,
 * sorted object keys, shortest-round-trip number rendering — so CI
 * can diff them and tests can assert byte equality.
 *
 * The same header provides the JSON renderer/parser (the repo's Value
 * is the document model; its toString() is not valid JSON) and
 * compareReports(), the regression check behind bench/compare_reports.
 */

#ifndef SPECFAAS_OBS_JSON_REPORT_HH
#define SPECFAAS_OBS_JSON_REPORT_HH

#include <string>
#include <vector>

#include "common/value.hh"
#include "obs/counter_registry.hh"
#include "obs/critical_path.hh"
#include "obs/histogram.hh"

namespace specfaas::obs {

/** Report schema identifier; bump on incompatible layout changes. */
inline constexpr const char* kReportSchema = "specfaas-report/1";

/**
 * Render @p v as standards-compliant JSON: escaped strings, sorted
 * object keys (Value objects are std::map), shortest-round-trip
 * doubles; NaN and infinities become null. @p pretty adds 2-space
 * indentation.
 */
std::string toJson(const Value& v, bool pretty = true);

/**
 * Parse a JSON document into a Value. Numbers without '.', 'e' or 'E'
 * that fit an int64 parse as Int, everything else as Double.
 * @return false (and *error, when given) on malformed input
 */
bool parseJson(const std::string& text, Value& out,
               std::string* error = nullptr);

/** @{ Report-section conversions. */
Value toValue(const LatencyHistogram& h);
Value toValue(const CriticalPathReport& r);
Value toValue(const SampledSeries& s);
Value counterSnapshotValue(const CounterRegistry& reg);
/** @} */

/**
 * Accumulates one bench run's report. Bench code records config and
 * metrics unconditionally (the cost is negligible); ObsSession
 * finalizes and writes the file only when --json-out was given.
 */
class JsonReport
{
  public:
    /** @param benchName stable bench identifier, e.g. "fig11_speedup" */
    explicit JsonReport(std::string benchName = "");

    void setBenchName(std::string name) { bench_ = std::move(name); }
    const std::string& benchName() const { return bench_; }

    /** Echo one configuration entry (seed, load, app set, ...). */
    void setConfig(const std::string& key, Value v);

    /**
     * Record a headline metric. @p higherIsBetter tells
     * compareReports which direction is a regression.
     */
    void addMetric(const std::string& name, double value,
                   bool higherIsBetter, const std::string& unit = "");

    /** Attach a free-form section (run summaries, app tables, ...). */
    void addSection(const std::string& name, Value v);

    /** Attach a latency histogram with standard percentiles. */
    void addHistogram(const std::string& name,
                      const LatencyHistogram& h);

    /** Assemble the full document. */
    Value build() const;

    /** Render build() and write it to @p path. */
    bool writeFile(const std::string& path) const;

  private:
    std::string bench_;
    ValueObject config_;
    ValueObject metrics_;
    ValueObject sections_;
    ValueObject histograms_;
};

/** Tolerances for compareReports. */
struct CompareOptions
{
    /**
     * Allowed relative change of a metric in its bad direction
     * (0.05 = 5%). Changes in the good direction never fail unless
     * @ref twoSided is set.
     */
    double relTolerance = 0.05;
    /** Ignore changes smaller than this in absolute value. */
    double absTolerance = 1e-9;
    /**
     * Treat any change beyond the tolerances as a failure, regardless
     * of direction. This is what identity gates want: the metrics are
     * the deterministic fingerprint of a run (event counts, ticks),
     * where drifting "better" is just as much a behaviour change as
     * drifting worse.
     */
    bool twoSided = false;
};

/** Outcome of comparing a candidate report against a baseline. */
struct CompareResult
{
    /** Schema/bench identity errors and missing metrics. */
    std::vector<std::string> errors;
    /** Metrics beyond tolerance in the bad direction. */
    std::vector<std::string> regressions;
    /** Informational: metrics that moved (either direction). */
    std::vector<std::string> notes;

    bool ok() const { return errors.empty() && regressions.empty(); }
};

/**
 * Compare two parsed reports metric-by-metric. Fails on schema or
 * bench-name mismatch, on metrics missing from the candidate, and on
 * any metric whose bad-direction change exceeds the tolerance.
 */
CompareResult compareReports(const Value& baseline,
                             const Value& candidate,
                             const CompareOptions& opts = {});

/**
 * Load, parse and compare two report files — the testable body of
 * the bench/compare_reports CLI. Appends the human-readable result
 * lines (the exact text the CLI prints) to @p output when non-null.
 * @return the CLI exit status: 0 within tolerance, 1 on regressions
 *         or report mismatches, 2 on IO/parse errors
 */
int compareReportFiles(const std::string& baselinePath,
                       const std::string& candidatePath,
                       const CompareOptions& opts = {},
                       std::string* output = nullptr);

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_JSON_REPORT_HH
