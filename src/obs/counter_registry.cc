#include "counter_registry.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"

namespace specfaas::obs {

std::uint64_t&
CounterRegistry::counter(const std::string& name)
{
    return counters_[name];
}

double&
CounterRegistry::gauge(const std::string& name)
{
    return gauges_[name];
}

void
CounterRegistry::add(const std::string& name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
CounterRegistry::set(const std::string& name, double value)
{
    gauges_[name] = value;
}

std::uint64_t
CounterRegistry::value(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, double>>
CounterRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entryCount());
    for (const auto& [name, v] : counters_)
        out.emplace_back(name, static_cast<double>(v));
    for (const auto& [name, v] : gauges_)
        out.emplace_back(name, v);
    return out;
}

void
CounterRegistry::mergeInto(CounterRegistry& dst) const
{
    for (const auto& [name, v] : counters_)
        dst.counters_[name] += v;
    for (const auto& [name, v] : gauges_)
        dst.gauges_[name] = v;
}

std::string
CounterRegistry::table() const
{
    TextTable t;
    t.header({"counter", "value"});
    for (const auto& [name, v] : counters_)
        t.row({name, strFormat("%llu",
                               static_cast<unsigned long long>(v))});
    if (!counters_.empty() && !gauges_.empty())
        t.separator();
    for (const auto& [name, v] : gauges_)
        t.row({name, fmtDouble(v, 3)});
    return t.render();
}

void
CounterRegistry::printTable() const
{
    std::fputs(table().c_str(), stdout);
}

void
CounterRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
}

// counters() — the default-context shim — is defined in
// sim/sim_context.cc.

} // namespace specfaas::obs
