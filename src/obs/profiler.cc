#include "profiler.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <deque>

#include "common/logging.hh"

namespace specfaas::obs {

// --- Site registry ------------------------------------------------------

namespace {

/**
 * Process-global site registry. Sites are interned once per OBS_ZONE
 * call site through a function-local static, so the mutex is cold:
 * it is taken on first execution of each site and never again.
 * Names live in a deque so zoneSiteName() references stay stable.
 */
struct SiteRegistry
{
    std::mutex mutex;
    std::deque<std::string> names;
    std::unordered_map<std::string, std::uint32_t> ids;
};

SiteRegistry&
siteRegistry()
{
    static SiteRegistry reg;
    return reg;
}

/** The counting-operator-new tally the profiler reads, if any. */
std::atomic<const std::atomic<std::uint64_t>*> gAllocSource{nullptr};

} // namespace

std::uint32_t
internZoneSite(const char* name)
{
    SiteRegistry& reg = siteRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    const auto it = reg.ids.find(name);
    if (it != reg.ids.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(reg.names.size());
    reg.names.emplace_back(name);
    reg.ids.emplace(name, id);
    return id;
}

const std::string&
zoneSiteName(std::uint32_t site)
{
    SiteRegistry& reg = siteRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    SPECFAAS_ASSERT(site < reg.names.size(),
                    "unknown zone site %u", site);
    return reg.names[site];
}

std::size_t
zoneSiteCount()
{
    SiteRegistry& reg = siteRegistry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return reg.names.size();
}

// --- Profiler -----------------------------------------------------------

void
Profiler::setAllocSource(const std::atomic<std::uint64_t>* src)
{
    gAllocSource.store(src, std::memory_order_relaxed);
}

std::uint64_t
Profiler::nowNs() const
{
    if (clock_ != nullptr)
        return clock_();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
Profiler::allocsNow() const
{
    const auto* src = gAllocSource.load(std::memory_order_relaxed);
    return src != nullptr ? src->load(std::memory_order_relaxed) : 0;
}

void
Profiler::enable()
{
    clear();
    enabled_ = true;
}

void
Profiler::disable()
{
    enabled_ = false;
    // Open frames are abandoned: their ZoneScope destructors will
    // still run exit(), which tolerates the empty stack below.
    stack_.clear();
    current_ = 0;
}

void
Profiler::clear()
{
    current_ = 0;
    stack_.clear();
    nodes_.assign(1, Node{0, 0});
    stats_.assign(1, Stats{});
    edges_.clear();
    siteCache_.clear();
}

bool
Profiler::hasData() const
{
    return nodes_.size() > 1;
}

std::uint32_t
Profiler::childPathFor(std::uint32_t parent, std::uint32_t site)
{
    constexpr std::uint32_t kNoParent = 0xffffffffu;
    if (site >= siteCache_.size())
        siteCache_.resize(site + 1, {kNoParent, 0});
    auto& cached = siteCache_[site];
    if (cached.first == parent)
        return cached.second;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(parent) << 32) | site;
    std::uint32_t node;
    if (const auto it = edges_.find(key); it != edges_.end()) {
        node = it->second;
    } else {
        node = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back(Node{parent, site});
        stats_.emplace_back();
        edges_.emplace(key, node);
    }
    cached = {parent, node};
    return node;
}

void
Profiler::enter(std::uint32_t site)
{
    const std::uint32_t path = childPathFor(current_, site);
    current_ = path;
    ++stats_[path].visits;
    stack_.push_back(Frame{path, nowNs(), allocsNow()});
}

void
Profiler::exit()
{
    // Empty under a disable() that abandoned open scopes; exiting
    // must stay safe so those scopes can unwind.
    if (stack_.empty())
        return;
    const Frame f = stack_.back();
    stack_.pop_back();
    Stats& s = stats_[f.path];
    s.wallNs += nowNs() - f.startNs;
    s.allocs += allocsNow() - f.startAllocs;
    current_ = nodes_[f.path].parent;
}

namespace {

/** Zone names of @p node's path, outermost first. */
std::vector<std::string>
stackNames(const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
               parentSite,
           std::uint32_t node)
{
    std::vector<std::string> names;
    for (std::uint32_t i = node; i != 0; i = parentSite[i].first)
        names.push_back(zoneSiteName(parentSite[i].second));
    std::reverse(names.begin(), names.end());
    return names;
}

/**
 * Escape one frame name for the collapsed-stack format. ';' is the
 * frame separator and ' ' the value separator, so raw occurrences
 * inside a zone name would silently corrupt the file for every
 * downstream consumer; backslash-escape them (and the escape
 * character itself, plus literal whitespace that would break the
 * line structure). Names without special characters pass through
 * byte-identical.
 */
std::string
escapeFrame(const std::string& name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case ';':
            out += "\\;";
            break;
        case ' ':
            out += "\\ ";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
joinStack(const std::vector<std::string>& stack)
{
    std::string s;
    for (std::size_t i = 0; i < stack.size(); ++i) {
        if (i > 0)
            s += ';';
        s += escapeFrame(stack[i]);
    }
    return s;
}

} // namespace

std::vector<Profiler::PathRow>
Profiler::pathRows() const
{
    // Children's inclusive totals, to derive self values.
    std::vector<std::uint64_t> childNs(nodes_.size(), 0);
    std::vector<std::uint64_t> childAllocs(nodes_.size(), 0);
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        childNs[nodes_[i].parent] += stats_[i].wallNs;
        childAllocs[nodes_[i].parent] += stats_[i].allocs;
    }

    std::vector<std::pair<std::uint32_t, std::uint32_t>> parentSite;
    parentSite.reserve(nodes_.size());
    for (const Node& n : nodes_)
        parentSite.emplace_back(n.parent, n.site);

    std::vector<PathRow> rows;
    rows.reserve(nodes_.size() - 1);
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        PathRow row;
        row.stack = stackNames(parentSite,
                               static_cast<std::uint32_t>(i));
        row.visits = stats_[i].visits;
        row.count = stats_[i].count;
        row.wallNs = stats_[i].wallNs;
        // An interrupted frame (disable with scopes open) can leave a
        // child's recorded total exceeding its parent's; clamp rather
        // than wrap.
        row.selfNs = stats_[i].wallNs >= childNs[i]
                         ? stats_[i].wallNs - childNs[i]
                         : 0;
        row.allocs = stats_[i].allocs;
        row.selfAllocs = stats_[i].allocs >= childAllocs[i]
                             ? stats_[i].allocs - childAllocs[i]
                             : 0;
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end(),
              [](const PathRow& a, const PathRow& b) {
                  return a.stack < b.stack;
              });
    return rows;
}

std::vector<Profiler::ZoneRow>
Profiler::zoneRows() const
{
    const std::vector<PathRow> paths = pathRows();
    std::unordered_map<std::string, ZoneRow> byName;
    for (const PathRow& p : paths) {
        const std::string& leaf = p.stack.back();
        ZoneRow& z = byName[leaf];
        z.name = leaf;
        z.visits += p.visits;
        z.count += p.count;
        z.selfNs += p.selfNs;
        z.selfAllocs += p.selfAllocs;
        // Inclusive totals only at the outermost occurrence of the
        // zone on this path, so recursion is not double-counted.
        const bool outermost =
            std::find(p.stack.begin(), p.stack.end() - 1, leaf) ==
            p.stack.end() - 1;
        if (outermost) {
            z.totalNs += p.wallNs;
            z.totalAllocs += p.allocs;
        }
    }
    std::vector<ZoneRow> rows;
    rows.reserve(byName.size());
    for (auto& [name, row] : byName)
        rows.push_back(std::move(row));
    std::sort(rows.begin(), rows.end(),
              [](const ZoneRow& a, const ZoneRow& b) {
                  return a.name < b.name;
              });
    return rows;
}

void
Profiler::mergeInto(Profiler& dst) const
{
    // Children are always created after their parent, so a single
    // index-ordered pass can map every node onto dst's tree.
    std::vector<std::uint32_t> map(nodes_.size(), 0);
    for (std::size_t i = 1; i < nodes_.size(); ++i) {
        const Node& n = nodes_[i];
        map[i] = dst.childPathFor(map[n.parent], n.site);
        Stats& d = dst.stats_[map[i]];
        const Stats& s = stats_[i];
        d.visits += s.visits;
        d.count += s.count;
        d.wallNs += s.wallNs;
        d.allocs += s.allocs;
    }
}

// --- Folded output ------------------------------------------------------

std::string
foldedProfile(const Profiler& p, Profiler::FoldedValue value)
{
    std::string out;
    for (const Profiler::PathRow& row : p.pathRows()) {
        std::uint64_t v = 0;
        switch (value) {
        case Profiler::FoldedValue::Visits:
            v = row.visits;
            break;
        case Profiler::FoldedValue::WallNs:
            v = row.selfNs;
            break;
        case Profiler::FoldedValue::Allocs:
            v = row.selfAllocs;
            break;
        }
        out += joinStack(row.stack);
        out += ' ';
        out += strFormat("%llu", static_cast<unsigned long long>(v));
        out += '\n';
    }
    return out;
}

bool
writeFoldedProfile(const Profiler& p, const std::string& path,
                   Profiler::FoldedValue value)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = foldedProfile(p, value);
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

bool
parseFolded(const std::string& text,
            std::vector<std::pair<std::string, std::uint64_t>>& out)
{
    out.clear();
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        // The value separator is the single unescaped space. Scan
        // with escape awareness: validate every escape sequence,
        // reject raw whitespace (an unescaped tab, or a second
        // unescaped space, means the path was written by something
        // that didn't escape — exactly the corruption this format
        // check exists to catch).
        std::size_t space = std::string::npos;
        std::size_t unescapedSpaces = 0;
        for (std::size_t i = 0; i < line.size(); ++i) {
            const char c = line[i];
            if (c == '\\') {
                if (i + 1 >= line.size())
                    return false; // dangling escape
                const char e = line[++i];
                if (e != '\\' && e != ';' && e != ' ' && e != 't' &&
                    e != 'n' && e != 'r')
                    return false; // unknown escape
                continue;
            }
            if (c == ' ') {
                space = i;
                ++unescapedSpaces;
            } else if (c == '\t' || c == '\r') {
                return false; // raw whitespace in path or value
            }
        }
        if (unescapedSpaces != 1 || space == 0 ||
            space + 1 >= line.size())
            return false;
        std::uint64_t v = 0;
        for (std::size_t i = space + 1; i < line.size(); ++i) {
            if (line[i] < '0' || line[i] > '9')
                return false;
            v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
        }
        out.emplace_back(line.substr(0, space), v);
    }
    return true;
}

std::string
profileTable(const Profiler& p)
{
    std::vector<Profiler::ZoneRow> rows = p.zoneRows();
    // Self wall time is what ranks the work-list; the deterministic
    // columns ride along for cross-checking against the JSON gate.
    std::sort(rows.begin(), rows.end(),
              [](const Profiler::ZoneRow& a,
                 const Profiler::ZoneRow& b) {
                  if (a.selfNs != b.selfNs)
                      return a.selfNs > b.selfNs;
                  return a.name < b.name;
              });
    std::uint64_t totalSelf = 0;
    for (const auto& r : rows)
        totalSelf += r.selfNs;
    std::string out = strFormat(
        "%-32s %10s %6s %10s %12s %12s %12s\n", "zone", "self-ms",
        "self%", "total-ms", "visits", "count", "self-allocs");
    for (const auto& r : rows) {
        out += strFormat(
            "%-32s %10.3f %5.1f%% %10.3f %12llu %12llu %12llu\n",
            r.name.c_str(), static_cast<double>(r.selfNs) / 1e6,
            totalSelf > 0 ? 100.0 * static_cast<double>(r.selfNs) /
                                static_cast<double>(totalSelf)
                          : 0.0,
            static_cast<double>(r.totalNs) / 1e6,
            static_cast<unsigned long long>(r.visits),
            static_cast<unsigned long long>(r.count),
            static_cast<unsigned long long>(r.selfAllocs));
    }
    return out;
}

// profiler() — the default-context shim — is defined in
// sim/sim_context.cc.

} // namespace specfaas::obs
