#include "json_report.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>

#include "common/logging.hh"
#include "obs/trace_export.hh"

namespace specfaas::obs {

// --- JSON rendering -----------------------------------------------------

namespace {

void
renderNumber(std::string& out, double d)
{
    if (!std::isfinite(d)) {
        out += "null"; // JSON has no NaN/Inf
        return;
    }
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    out.append(buf, res.ptr);
}

void
renderInto(std::string& out, const Value& v, bool pretty, int depth)
{
    const std::string pad = pretty ? std::string(2 * (depth + 1), ' ')
                                   : std::string();
    const std::string close = pretty ? std::string(2 * depth, ' ')
                                     : std::string();
    const char* nl = pretty ? "\n" : "";
    switch (v.kind()) {
    case Value::Kind::Null:
        out += "null";
        return;
    case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        return;
    case Value::Kind::Int:
        out += strFormat("%lld",
                         static_cast<long long>(v.asInt()));
        return;
    case Value::Kind::Double:
        renderNumber(out, v.asDouble());
        return;
    case Value::Kind::String:
        out += '"';
        out += jsonEscape(v.asString());
        out += '"';
        return;
    case Value::Kind::Array: {
        const ValueArray& a = v.asArray();
        if (a.empty()) {
            out += "[]";
            return;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < a.size(); ++i) {
            out += pad;
            renderInto(out, a[i], pretty, depth + 1);
            if (i + 1 < a.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += ']';
        return;
    }
    case Value::Kind::Object: {
        const ValueObject& o = v.asObject();
        if (o.empty()) {
            out += "{}";
            return;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto& [key, val] : o) {
            out += pad;
            out += '"';
            out += jsonEscape(key);
            out += pretty ? "\": " : "\":";
            renderInto(out, val, pretty, depth + 1);
            if (++i < o.size())
                out += ',';
            out += nl;
        }
        out += close;
        out += '}';
        return;
    }
    }
}

} // namespace

std::string
toJson(const Value& v, bool pretty)
{
    std::string out;
    renderInto(out, v, pretty, 0);
    if (pretty)
        out += '\n';
    return out;
}

// --- JSON parsing -------------------------------------------------------

namespace {

struct Parser
{
    const char* p;
    const char* end;
    std::string err;

    bool fail(const std::string& what)
    {
        if (err.empty())
            err = what;
        return false;
    }

    void skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return fail(strFormat("expected '%c' at offset %zu", c,
                              static_cast<std::size_t>(p - end)));
    }

    bool parseValue(Value& out);

    bool parseString(std::string& out)
    {
        skipWs();
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p >= end)
                return fail("truncated escape");
            const char esc = *p++;
            switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (end - p < 4)
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    code <<= 4;
                    const char h = *p++;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are not produced by our own writer).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                return fail("bad escape");
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p; // closing quote
        return true;
    }

    bool parseNumber(Value& out)
    {
        const char* start = p;
        if (p < end && *p == '-')
            ++p;
        bool isDouble = false;
        while (p < end &&
               ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                *p == 'E' || *p == '+' || *p == '-')) {
            if (*p == '.' || *p == 'e' || *p == 'E')
                isDouble = true;
            ++p;
        }
        if (p == start)
            return fail("expected number");
        const std::string text(start, p);
        if (!isDouble) {
            errno = 0;
            char* endp = nullptr;
            const long long i = std::strtoll(text.c_str(), &endp, 10);
            if (errno == 0 && endp != nullptr && *endp == '\0') {
                out = Value(static_cast<std::int64_t>(i));
                return true;
            }
        }
        out = Value(std::strtod(text.c_str(), nullptr));
        return true;
    }
};

bool
Parser::parseValue(Value& out)
{
    skipWs();
    if (p >= end)
        return fail("unexpected end of input");
    switch (*p) {
    case '{': {
        ++p;
        ValueObject obj;
        skipWs();
        if (p < end && *p == '}') {
            ++p;
            out = Value(std::move(obj));
            return true;
        }
        while (true) {
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            Value v;
            if (!parseValue(v))
                return false;
            obj.emplace(std::move(key), std::move(v));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            break;
        }
        if (!consume('}'))
            return false;
        out = Value(std::move(obj));
        return true;
    }
    case '[': {
        ++p;
        ValueArray arr;
        skipWs();
        if (p < end && *p == ']') {
            ++p;
            out = Value(std::move(arr));
            return true;
        }
        while (true) {
            Value v;
            if (!parseValue(v))
                return false;
            arr.push_back(std::move(v));
            skipWs();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            break;
        }
        if (!consume(']'))
            return false;
        out = Value(std::move(arr));
        return true;
    }
    case '"': {
        std::string s;
        if (!parseString(s))
            return false;
        out = Value(std::move(s));
        return true;
    }
    case 't':
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
            p += 4;
            out = Value(true);
            return true;
        }
        return fail("bad literal");
    case 'f':
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
            p += 5;
            out = Value(false);
            return true;
        }
        return fail("bad literal");
    case 'n':
        if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
            p += 4;
            out = Value();
            return true;
        }
        return fail("bad literal");
    default:
        return parseNumber(out);
    }
}

} // namespace

bool
parseJson(const std::string& text, Value& out, std::string* error)
{
    Parser parser{text.data(), text.data() + text.size(), {}};
    if (!parser.parseValue(out)) {
        if (error != nullptr)
            *error = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (error != nullptr)
            *error = "trailing characters after document";
        return false;
    }
    return true;
}

// --- Section conversions ------------------------------------------------

Value
toValue(const LatencyHistogram& h)
{
    ValueObject o;
    o["count"] = Value(static_cast<std::int64_t>(h.count()));
    o["sum"] = Value(h.sum());
    o["min"] = Value(h.min());
    o["max"] = Value(h.max());
    o["mean"] = Value(h.mean());
    ValueObject pct;
    for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        pct[strFormat("p%g", p)] = Value(h.percentile(p));
    }
    o["percentiles"] = Value(std::move(pct));
    ValueArray buckets;
    for (const auto& b : h.buckets()) {
        buckets.push_back(Value::object(
            {{"lo", Value(b.lower)},
             {"hi", Value(b.upper)},
             {"n", Value(static_cast<std::int64_t>(b.count))}}));
    }
    o["buckets"] = Value(std::move(buckets));
    return Value(std::move(o));
}

namespace {

Value
toValue(const SegmentBreakdown& b)
{
    return Value::object(
        {{"queueing", Value(static_cast<std::int64_t>(b.queueing))},
         {"container_creation",
          Value(static_cast<std::int64_t>(b.containerCreation))},
         {"runtime_setup",
          Value(static_cast<std::int64_t>(b.runtimeSetup))},
         {"execution", Value(static_cast<std::int64_t>(b.execution))},
         {"stall_read", Value(static_cast<std::int64_t>(b.stallRead))},
         {"validation",
          Value(static_cast<std::int64_t>(b.validation))},
         {"commit_wait",
          Value(static_cast<std::int64_t>(b.commitWait))},
         {"total", Value(static_cast<std::int64_t>(b.total()))}});
}

} // namespace

Value
toValue(const CriticalPathReport& r)
{
    ValueObject o;
    o["invocations"] =
        Value(static_cast<std::int64_t>(r.invocations.size()));
    o["rejected"] =
        Value(static_cast<std::int64_t>(r.rejectedInvocations));
    o["incomplete"] =
        Value(static_cast<std::int64_t>(r.incompleteInvocations));
    o["totals"] = toValue(r.totals);

    ValueObject apps;
    for (const auto& [name, app] : r.perApp) {
        apps[name] = Value::object(
            {{"invocations",
              Value(static_cast<std::int64_t>(app.invocations))},
             {"totals", toValue(app.totals)}});
    }
    o["per_app"] = Value(std::move(apps));

    const WastedWork& ww = r.speculation;
    ValueObject spec;
    spec["useful_ticks"] =
        Value(static_cast<std::int64_t>(ww.usefulTicks));
    spec["wasted_ticks"] =
        Value(static_cast<std::int64_t>(ww.wastedTicks));
    spec["committed_instances"] =
        Value(static_cast<std::int64_t>(ww.committedInstances));
    spec["squashed_instances"] =
        Value(static_cast<std::int64_t>(ww.squashedInstances));
    spec["wasted_fraction"] = Value(ww.wastedFraction());
    ValueObject byReason;
    for (const auto& [reason, ticks] : ww.wastedByReason) {
        byReason[reason] = Value::object(
            {{"squashes",
              Value(static_cast<std::int64_t>(
                  ww.squashesByReason.at(reason)))},
             {"wasted_ticks",
              Value(static_cast<std::int64_t>(ticks))}});
    }
    spec["by_reason"] = Value(std::move(byReason));
    ValueObject byDepth;
    for (const auto& [depth, ticks] : ww.wastedByDepth) {
        byDepth[strFormat("%d", depth)] =
            Value(static_cast<std::int64_t>(ticks));
    }
    spec["wasted_by_depth"] = Value(std::move(byDepth));
    o["speculation"] = Value(std::move(spec));
    return Value(std::move(o));
}

Value
toValue(const SampledSeries& s)
{
    ValueObject o;
    o["label"] = Value(s.label);
    o["interval"] = Value(static_cast<std::int64_t>(s.interval));
    o["observations"] =
        Value(static_cast<std::int64_t>(s.observations));
    ValueArray times;
    for (Tick t : s.times)
        times.push_back(Value(static_cast<std::int64_t>(t)));
    o["times"] = Value(std::move(times));
    ValueObject gauges;
    for (std::size_t g = 0; g < s.gaugeNames.size(); ++g) {
        ValueArray series;
        for (double v : s.values[g])
            series.push_back(Value(v));
        const auto& st = s.stats[g];
        gauges[s.gaugeNames[g]] = Value::object(
            {{"series", Value(std::move(series))},
             {"min", Value(st.min)},
             {"max", Value(st.max)},
             {"mean", Value(st.mean)},
             {"last", Value(st.last)}});
    }
    o["gauges"] = Value(std::move(gauges));
    return Value(std::move(o));
}

Value
counterSnapshotValue(const CounterRegistry& reg)
{
    ValueObject o;
    for (const auto& [name, value] : reg.snapshot())
        o[name] = Value(value);
    return Value(std::move(o));
}

// --- JsonReport ---------------------------------------------------------

JsonReport::JsonReport(std::string benchName)
    : bench_(std::move(benchName))
{
}

void
JsonReport::setConfig(const std::string& key, Value v)
{
    config_[key] = std::move(v);
}

void
JsonReport::addMetric(const std::string& name, double value,
                      bool higherIsBetter, const std::string& unit)
{
    ValueObject m;
    m["value"] = Value(value);
    m["higher_is_better"] = Value(higherIsBetter);
    if (!unit.empty())
        m["unit"] = Value(unit);
    metrics_[name] = Value(std::move(m));
}

void
JsonReport::addSection(const std::string& name, Value v)
{
    sections_[name] = std::move(v);
}

void
JsonReport::addHistogram(const std::string& name,
                         const LatencyHistogram& h)
{
    histograms_[name] = toValue(h);
}

Value
JsonReport::build() const
{
    ValueObject doc;
    doc["schema"] = Value(kReportSchema);
    doc["bench"] = Value(bench_);
    doc["config"] = Value(config_);
    doc["metrics"] = Value(metrics_);
    doc["sections"] = Value(sections_);
    doc["histograms"] = Value(histograms_);
    return Value(std::move(doc));
}

bool
JsonReport::writeFile(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const std::string text = toJson(build());
    const bool ok =
        std::fwrite(text.data(), 1, text.size(), f) == text.size();
    return std::fclose(f) == 0 && ok;
}

// --- Report comparison --------------------------------------------------

namespace {

/** A metric value that compares as "not there": JSON null (how NaN
 * renders) or a non-finite double (a NaN that never round-tripped). */
bool
undefinedMetric(const Value& v)
{
    return v.isNull() || (v.isDouble() && !std::isfinite(v.asNumber()));
}

} // namespace

CompareResult
compareReports(const Value& baseline, const Value& candidate,
               const CompareOptions& opts)
{
    CompareResult res;
    if (!baseline.isObject() || baseline.asObject().empty()) {
        res.errors.push_back(
            "baseline report is empty or not a JSON object");
        return res;
    }
    if (!candidate.isObject() || candidate.asObject().empty()) {
        res.errors.push_back(
            "candidate report is empty or not a JSON object");
        return res;
    }
    const Value& bs = baseline.at("schema");
    const Value& cs = candidate.at("schema");
    if (!bs.isString() || !cs.isString() ||
        bs.asString() != cs.asString()) {
        res.errors.push_back("schema mismatch");
        return res;
    }
    const Value& bb = baseline.at("bench");
    const Value& cb = candidate.at("bench");
    if (bb.isString() && cb.isString() &&
        bb.asString() != cb.asString()) {
        res.errors.push_back(strFormat(
            "bench mismatch: baseline '%s' vs candidate '%s'",
            bb.asString().c_str(), cb.asString().c_str()));
        return res;
    }

    const Value& bm = baseline.at("metrics");
    const Value& cm = candidate.at("metrics");
    if (!bm.isObject()) {
        res.errors.push_back("baseline has no metrics object");
        return res;
    }
    if (!cm.isObject()) {
        res.errors.push_back("candidate has no metrics object");
        return res;
    }
    for (const auto& [name, metric] : bm.asObject()) {
        const Value& other = cm.at(name);
        if (other.isNull()) {
            res.errors.push_back(
                strFormat("metric '%s' missing from candidate",
                          name.c_str()));
            continue;
        }
        const Value& oldV = metric.at("value");
        const Value& newV = other.at("value");
        // NaN renders as JSON null; a metric that silently became
        // undefined is a broken bench, not a pass.
        if (undefinedMetric(oldV) && undefinedMetric(newV)) {
            res.notes.push_back(strFormat(
                "metric '%s' undefined in both reports", name.c_str()));
            continue;
        }
        if (undefinedMetric(newV)) {
            res.errors.push_back(strFormat(
                "metric '%s' became undefined (NaN) in candidate",
                name.c_str()));
            continue;
        }
        if (undefinedMetric(oldV)) {
            res.notes.push_back(strFormat(
                "metric '%s' undefined in baseline, %g in candidate",
                name.c_str(), newV.asNumber()));
            continue;
        }
        const double oldX = oldV.asNumber();
        const double newX = newV.asNumber();
        const bool higherBetter =
            metric.at("higher_is_better").isBool()
                ? metric.at("higher_is_better").asBool()
                : true;
        const double delta = newX - oldX;
        if (std::fabs(delta) <= opts.absTolerance)
            continue;
        const double rel =
            oldX != 0.0 ? delta / std::fabs(oldX)
                        : std::numeric_limits<double>::infinity() *
                              (delta > 0 ? 1.0 : -1.0);
        const double badness = opts.twoSided
                                   ? std::fabs(rel)
                                   : (higherBetter ? -rel : rel);
        const std::string line = strFormat(
            "%s: %g -> %g (%+.2f%%, %s is better)", name.c_str(), oldX,
            newX, rel * 100.0, higherBetter ? "higher" : "lower");
        if (badness > opts.relTolerance)
            res.regressions.push_back(line);
        else
            res.notes.push_back(line);
    }
    // Candidate-only metrics can't regress anything, but surfacing
    // them catches renamed metrics whose old name then reads as
    // "missing from candidate" forever.
    for (const auto& [name, metric] : cm.asObject()) {
        (void)metric;
        if (bm.at(name).isNull()) {
            res.notes.push_back(strFormat(
                "metric '%s' only in candidate", name.c_str()));
        }
    }

    // Deterministic profiler zones (sections.profile.zones), gated by
    // subset: snapshots without a profile section gate nothing, so
    // profiled and unprofiled baselines coexist. Zone visit/count
    // drift is directionless identity data — with --two-sided drift
    // beyond tolerance is a regression, one-sided runs only note it.
    const Value& bz =
        baseline.at("sections").at("profile").at("zones");
    const Value& cz =
        candidate.at("sections").at("profile").at("zones");
    if (bz.isArray()) {
        if (!cz.isArray()) {
            res.errors.push_back(
                "baseline has profile zones but candidate has none");
            return res;
        }
        std::map<std::string, const Value*> candidateZones;
        for (const Value& z : cz.asArray()) {
            if (z.at("name").isString())
                candidateZones[z.at("name").asString()] = &z;
        }
        for (const Value& z : bz.asArray()) {
            if (!z.at("name").isString())
                continue;
            const std::string& zname = z.at("name").asString();
            auto it = candidateZones.find(zname);
            if (it == candidateZones.end()) {
                res.errors.push_back(strFormat(
                    "profile zone '%s' missing from candidate",
                    zname.c_str()));
                continue;
            }
            for (const char* field : {"visits", "count"}) {
                const Value& oldV = z.at(field);
                const Value& newV = it->second->at(field);
                if (oldV.isNull() || newV.isNull())
                    continue;
                const double oldX = oldV.asNumber();
                const double newX = newV.asNumber();
                const double delta = newX - oldX;
                if (std::fabs(delta) <= opts.absTolerance)
                    continue;
                const double rel =
                    oldX != 0.0
                        ? std::fabs(delta / oldX)
                        : std::numeric_limits<double>::infinity();
                const std::string line = strFormat(
                    "profile zone '%s' %s: %g -> %g (%+.2f%%)",
                    zname.c_str(), field, oldX, newX,
                    (newX - oldX) / (oldX != 0.0 ? oldX : 1.0) *
                        100.0);
                if (opts.twoSided && rel > opts.relTolerance)
                    res.regressions.push_back(line);
                else
                    res.notes.push_back(line);
            }
            candidateZones.erase(it);
        }
        for (const auto& [zname, z] : candidateZones) {
            (void)z;
            res.notes.push_back(strFormat(
                "profile zone '%s' only in candidate", zname.c_str()));
        }
    }
    return res;
}

int
compareReportFiles(const std::string& baselinePath,
                   const std::string& candidatePath,
                   const CompareOptions& opts, std::string* output)
{
    auto say = [output](const std::string& line) {
        if (output != nullptr) {
            *output += line;
            *output += '\n';
        }
    };

    Value reports[2];
    const std::string* paths[2] = {&baselinePath, &candidatePath};
    for (int i = 0; i < 2; ++i) {
        std::FILE* f = std::fopen(paths[i]->c_str(), "rb");
        if (f == nullptr) {
            say(strFormat("ERROR      cannot read %s",
                          paths[i]->c_str()));
            return 2;
        }
        std::string text;
        char buf[4096];
        std::size_t n = 0;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        std::string error;
        if (!parseJson(text, reports[i], &error)) {
            say(strFormat("ERROR      %s: %s", paths[i]->c_str(),
                          error.c_str()));
            return 2;
        }
    }

    const CompareResult result =
        compareReports(reports[0], reports[1], opts);
    for (const std::string& e : result.errors)
        say("ERROR      " + e);
    for (const std::string& r : result.regressions)
        say("REGRESSION " + r);
    for (const std::string& n2 : result.notes)
        say("note       " + n2);
    if (result.ok()) {
        say(strFormat("OK: %s is within %.1f%% of %s",
                      candidatePath.c_str(),
                      100.0 * opts.relTolerance,
                      baselinePath.c_str()));
        return 0;
    }
    say(strFormat("FAIL: %zu error(s), %zu regression(s)",
                  result.errors.size(), result.regressions.size()));
    return 1;
}

} // namespace specfaas::obs
