/**
 * @file
 * Command-line session wrapper for the observability layer.
 *
 * A bench binary declares one ObsSession at the top of main(); the
 * constructor strips the observability flags out of argv (so existing
 * positional-argument handling keeps working) and the destructor
 * writes the trace file / JSON report and prints the counter table
 * after the run:
 *
 *     int main(int argc, char** argv) {
 *         obs::ObsSession obs(argc, argv);
 *         ...
 *         obs.report().addMetric("speedup", 4.6, true);
 *     }
 *
 * Recognized flags:
 *   --trace-out=<file>       enable tracing; write a Chrome
 *                            trace_event JSON file (load in
 *                            chrome://tracing or ui.perfetto.dev)
 *   --trace-capacity=<n>     ring capacity in events (default 1M)
 *   --counters               print the global counter table on exit
 *   --json-out=<file>        write a schema-versioned JSON run report
 *                            (metrics, counters, histograms,
 *                            critical-path breakdown, utilization
 *                            timelines); implies tracing and gauge
 *                            sampling
 *   --sample-interval=<us>   gauge-sampling period in simulated µs
 *                            (0 disables; default 0, or 10000 when
 *                            --json-out is given)
 *   --trace-sample=<n>       record spans for 1-in-n invocations
 *                            (deterministic by invocation id;
 *                            default 1 = all)
 *   --profile                enable the zone profiler and print the
 *                            self-time table on exit; adds the
 *                            deterministic "profile" section to
 *                            --json-out reports
 *   --profile-out=<file>     write a collapsed-stack "folded" profile
 *                            (flamegraph.pl / speedscope input);
 *                            implies --profile
 *   --profile-value=<v>      folded value selector: "visits"
 *                            (default, byte-deterministic), "wall"
 *                            (self ns), or "allocs"
 */

#ifndef SPECFAAS_OBS_OBS_CLI_HH
#define SPECFAAS_OBS_OBS_CLI_HH

#include <string>

#include "obs/json_report.hh"
#include "obs/profiler.hh"

namespace specfaas {
class SimContext;
}

namespace specfaas::obs {

/** Scoped enable/flush of tracing, reporting, and counter printing. */
class ObsSession
{
  public:
    /**
     * Parse and remove observability flags from @p argc / @p argv.
     * Unrecognized arguments are left in place and keep their order.
     */
    ObsSession(int& argc, char** argv);

    /** Flush: write trace file / JSON report, print counters. */
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /** Non-empty when --trace-out was given. */
    const std::string& traceOut() const { return traceOut_; }

    /** Non-empty when --json-out was given. */
    const std::string& jsonOut() const { return jsonOut_; }

    /** True when --counters was given. */
    bool printCounters() const { return printCounters_; }

    /** True when --profile (or --profile-out) was given. */
    bool profileEnabled() const { return profile_; }

    /** Non-empty when --profile-out was given. */
    const std::string& profileOut() const { return profileOut_; }

    /**
     * The run report. Benches record config and headline metrics
     * here unconditionally; it is written only under --json-out.
     */
    JsonReport& report() { return report_; }

    /**
     * The session's SimContext — the process-global default context
     * this session configured in its constructor and flushes in its
     * destructor. Parallel sweeps fork per-task contexts from it and
     * merge them back in submission order (see runSimTasks in
     * sim/sim_context.hh), so the flushed artifacts are identical to
     * a serial run's.
     */
    SimContext& context() const;

  private:
    std::string traceOut_;
    std::string jsonOut_;
    std::string profileOut_;
    bool printCounters_ = false;
    bool profile_ = false;
    Profiler::FoldedValue profileValue_ = Profiler::FoldedValue::Visits;
    JsonReport report_;
};

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_OBS_CLI_HH
