/**
 * @file
 * Command-line session wrapper for the observability layer.
 *
 * A bench binary declares one ObsSession at the top of main(); the
 * constructor strips the observability flags out of argv (so existing
 * positional-argument handling keeps working) and the destructor
 * writes the trace file and prints the counter table after the run:
 *
 *     int main(int argc, char** argv) {
 *         obs::ObsSession obs(argc, argv);
 *         ...
 *     }
 *
 * Recognized flags:
 *   --trace-out=<file>   enable tracing; write a Chrome trace_event
 *                        JSON file (load in chrome://tracing or
 *                        https://ui.perfetto.dev) on exit
 *   --trace-capacity=<n> ring capacity in events (default 1M)
 *   --counters           print the global counter table on exit
 */

#ifndef SPECFAAS_OBS_OBS_CLI_HH
#define SPECFAAS_OBS_OBS_CLI_HH

#include <string>

namespace specfaas::obs {

/** Scoped enable/flush of tracing and counter printing for a main(). */
class ObsSession
{
  public:
    /**
     * Parse and remove observability flags from @p argc / @p argv.
     * Unrecognized arguments are left in place and keep their order.
     */
    ObsSession(int& argc, char** argv);

    /** Flush: write the trace file and/or print counters. */
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    /** Non-empty when --trace-out was given. */
    const std::string& traceOut() const { return traceOut_; }

    /** True when --counters was given. */
    bool printCounters() const { return printCounters_; }

  private:
    std::string traceOut_;
    bool printCounters_ = false;
};

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_OBS_CLI_HH
