#include "trace_recorder.hh"

#include "common/logging.hh"

namespace specfaas::obs {

void
TraceRecorder::enable(std::size_t capacity)
{
    SPECFAAS_ASSERT(capacity > 0, "trace ring with zero capacity");
    capacity_ = capacity;
    ring_.clear();
    ring_.resize(capacity_);
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
    enabled_ = true;
}

void
TraceRecorder::clear()
{
    for (auto& e : ring_)
        e = TraceEvent{};
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
}

void
TraceRecorder::record(TraceEvent ev)
{
    if (!enabled_ || !sampled(ev.tid))
        return;
    ring_[head_] = std::move(ev);
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_)
        ++size_;
    else
        ++dropped_;
}

void
TraceRecorder::begin(const char* category, std::string name, Tick ts,
                     std::uint64_t pid, std::uint64_t tid,
                     std::vector<TraceArg> args)
{
    record(TraceEvent{Phase::Begin, category, std::move(name), ts, pid,
                      tid, std::move(args)});
}

void
TraceRecorder::end(const char* category, std::string name, Tick ts,
                   std::uint64_t pid, std::uint64_t tid,
                   std::vector<TraceArg> args)
{
    record(TraceEvent{Phase::End, category, std::move(name), ts, pid,
                      tid, std::move(args)});
}

void
TraceRecorder::instant(const char* category, std::string name, Tick ts,
                       std::uint64_t pid, std::uint64_t tid,
                       std::vector<TraceArg> args)
{
    record(TraceEvent{Phase::Instant, category, std::move(name), ts, pid,
                      tid, std::move(args)});
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest event sits at head_ once the ring has wrapped.
    const std::size_t start = size_ < capacity_ ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % capacity_]);
    return out;
}

void
TraceRecorder::absorb(const TraceRecorder& other)
{
    if (!enabled_)
        return;
    const std::size_t start =
        other.size_ < other.capacity_ ? 0 : other.head_;
    for (std::size_t i = 0; i < other.size_; ++i)
        record(other.ring_[(start + i) % other.capacity_]);
    dropped_ += other.dropped_;
}

// trace() — the default-context shim — is defined in
// sim/sim_context.cc.

} // namespace specfaas::obs
