/**
 * @file
 * Bounded in-memory recorder of trace events.
 *
 * The recorder is disabled by default and costs one branch per call
 * site while disabled — call sites must guard any argument
 * construction behind enabled() so a non-traced run does no string
 * work at all:
 *
 *     auto& tr = obs::trace();
 *     if (tr.enabled())
 *         tr.instant(obs::cat::kSpec, "squash", now, pid, tid,
 *                    {{"reason", "control-mispredict"}});
 *
 * Storage is a fixed-capacity ring buffer: when full, the oldest
 * events are overwritten and dropped() counts the loss, so tracing a
 * long run keeps the tail (the interesting part when debugging how a
 * run ended) at a bounded memory cost.
 *
 * Each SimContext owns one recorder; engine layers record into their
 * Simulation::context().trace(). obs::trace() is the default
 * context's instance, for single-simulation binaries and tests.
 */

#ifndef SPECFAAS_OBS_TRACE_RECORDER_HH
#define SPECFAAS_OBS_TRACE_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace_event.hh"

namespace specfaas::obs {

/** Ring-buffered trace-event recorder. */
class TraceRecorder
{
  public:
    /** Default ring capacity (events). */
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    /** Start recording into a fresh ring of @p capacity events. */
    void enable(std::size_t capacity = kDefaultCapacity);

    /** Stop recording (buffered events are kept until clear()). */
    void disable() { enabled_ = false; }

    /** True while events are being recorded. Hot-path check. */
    bool enabled() const { return enabled_; }

    /** Drop all buffered events and reset the dropped counter. */
    void clear();

    /**
     * Deterministic 1-in-N sampling: record only events whose tid —
     * the invocation/instance id at every engine call site — is a
     * multiple of @p n. Events with tid 0 (control-plane instants not
     * tied to one invocation) always record, so per-invocation spans
     * stay balanced: an invocation is either fully traced or fully
     * skipped. 1 (the default) records everything. The decision
     * depends only on ids, which are a function of the task index —
     * not the worker count — so sampled traces remain byte-identical
     * at any --jobs value.
     */
    void setSample(std::uint64_t n) { sample_ = n > 0 ? n : 1; }

    /** Current sampling divisor (1 = record everything). */
    std::uint64_t sample() const { return sample_; }

    /** True when the event with @p tid passes the sampling filter. */
    bool sampled(std::uint64_t tid) const
    {
        return sample_ <= 1 || tid == 0 || tid % sample_ == 0;
    }

    /** Record one event (no-op when disabled or sampled out). */
    void record(TraceEvent ev);

    /**
     * Append @p other's buffered events (oldest first) and carry over
     * its dropped count. No-op while disabled. Merging several
     * recorders in submission order reproduces exactly the ring a
     * serial run would have produced: the ring keeps the newest
     * capacity() events either way, and dropped() sums to the same
     * total.
     */
    void absorb(const TraceRecorder& other);

    /** @{ Convenience emitters. */
    void begin(const char* category, std::string name, Tick ts,
               std::uint64_t pid, std::uint64_t tid,
               std::vector<TraceArg> args = {});
    void end(const char* category, std::string name, Tick ts,
             std::uint64_t pid, std::uint64_t tid,
             std::vector<TraceArg> args = {});
    void instant(const char* category, std::string name, Tick ts,
                 std::uint64_t pid, std::uint64_t tid,
                 std::vector<TraceArg> args = {});
    /** @} */

    /** Buffered events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Number of currently buffered events. */
    std::size_t size() const { return size_; }

    /** Ring capacity (0 until enable()). */
    std::size_t capacity() const { return capacity_; }

    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

  private:
    bool enabled_ = false;
    std::uint64_t sample_ = 1;
    std::size_t capacity_ = 0;
    std::size_t head_ = 0; ///< next write position
    std::size_t size_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> ring_;
};

/**
 * The default SimContext's recorder (single-sim shim; defined in
 * sim/sim_context.cc). Engine layers record through their
 * Simulation::context() instead so multi-simulation harnesses stay
 * isolated; this accessor serves session-level code (ObsSession) and
 * tests.
 */
TraceRecorder& trace();

} // namespace specfaas::obs

#endif // SPECFAAS_OBS_TRACE_RECORDER_HH
