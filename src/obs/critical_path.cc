#include "critical_path.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"
#include "common/table.hh"

namespace specfaas::obs {

void
SegmentBreakdown::add(const SegmentBreakdown& o)
{
    queueing += o.queueing;
    containerCreation += o.containerCreation;
    runtimeSetup += o.runtimeSetup;
    execution += o.execution;
    stallRead += o.stallRead;
    validation += o.validation;
    commitWait += o.commitWait;
}

double
WastedWork::wastedFraction() const
{
    const double total =
        static_cast<double>(usefulTicks) + static_cast<double>(wastedTicks);
    if (total <= 0.0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(wastedTicks) / total;
}

namespace {

const std::string*
argValue(const TraceEvent& ev, const char* key)
{
    for (const TraceArg& a : ev.args)
        if (a.key == key)
            return &a.value;
    return nullptr;
}

long long
argNum(const TraceEvent& ev, const char* key, long long def)
{
    const std::string* v = argValue(ev, key);
    if (v == nullptr)
        return def;
    return std::strtoll(v->c_str(), nullptr, 10);
}

/** Everything observed about one function instance. */
struct InstRec
{
    std::uint64_t invocation = 0; ///< 0 = Begin not seen (dropped)
    std::string order;
    Tick lifeBegin = -1;
    Tick lifeEnd = -1;
    Tick execBegin = -1;
    Tick execEnd = -1;
    Tick containerCreation = 0;
    Tick runtimeSetup = 0;
    long long execTicks = -1;
    bool squashed = false;
    std::string squashReason;
    std::uint64_t squashId = 0;
    Tick stallOpen = -1;
    std::vector<std::pair<Tick, Tick>> stalls;
};

/** Everything observed about one end-to-end invocation. */
struct InvRec
{
    std::string app;
    Tick submit = -1;
    Tick complete = -1;
    bool spec = false; ///< invoke came from the SpecFaaS engine
    /** order string -> latest commit ts. */
    std::map<std::string, Tick> commits;
    std::vector<std::uint64_t> instances;
};

/** One candidate interval of a committed instance. */
struct Interval
{
    Tick start;
    Tick end;
    int prio; ///< higher wins where intervals overlap
};

// Priorities: progress beats waiting, specific beats generic.
constexpr int kExecution = 6;
constexpr int kStallRead = 5;
constexpr int kRuntimeSetup = 4;
constexpr int kContainerCreation = 3;
constexpr int kQueueing = 2;
constexpr int kValidation = 1;

void
addInterval(std::vector<Interval>& out, Tick start, Tick end, int prio,
            Tick lo, Tick hi)
{
    start = std::max(start, lo);
    end = std::min(end, hi);
    if (start < end)
        out.push_back(Interval{start, end, prio});
}

Tick&
segmentFor(SegmentBreakdown& b, int prio)
{
    switch (prio) {
    case kExecution:
        return b.execution;
    case kStallRead:
        return b.stallRead;
    case kRuntimeSetup:
        return b.runtimeSetup;
    case kContainerCreation:
        return b.containerCreation;
    case kQueueing:
        return b.queueing;
    case kValidation:
        return b.validation;
    default:
        return b.commitWait;
    }
}

/** Cascade depth of a squash id via the id -> parent chain. */
int
cascadeDepth(const std::map<std::uint64_t, std::uint64_t>& parents,
             std::uint64_t id)
{
    int depth = 1;
    while (id != 0 && depth < 64) {
        auto it = parents.find(id);
        if (it == parents.end() || it->second == 0)
            break;
        id = it->second;
        ++depth;
    }
    return depth;
}

} // namespace

CriticalPathReport
analyzeTrace(const std::vector<TraceEvent>& events)
{
    std::map<std::uint64_t, InstRec> insts;
    std::map<std::uint64_t, InvRec> invs;
    std::map<std::uint64_t, std::uint64_t> squashParents;
    CriticalPathReport report;

    for (const TraceEvent& ev : events) {
        const bool isLifecycle =
            std::strcmp(ev.category, cat::kLifecycle) == 0;
        const bool isExec = std::strcmp(ev.category, cat::kExec) == 0;
        const bool isEngine =
            std::strcmp(ev.category, cat::kSpec) == 0 ||
            std::strcmp(ev.category, cat::kBaseline) == 0;

        if (isLifecycle) {
            if (ev.phase == Phase::Begin) {
                InstRec& r = insts[ev.tid];
                r.lifeBegin = ev.ts;
                r.invocation = static_cast<std::uint64_t>(
                    argNum(ev, "invocation", 0));
                if (const std::string* o = argValue(ev, "order"))
                    r.order = *o;
                if (r.invocation != 0)
                    invs[r.invocation].instances.push_back(ev.tid);
            } else if (ev.phase == Phase::End) {
                InstRec& r = insts[ev.tid];
                r.lifeEnd = ev.ts;
                if (argNum(ev, "squashed", 0) != 0) {
                    r.squashed = true;
                    if (const std::string* s = argValue(ev, "reason"))
                        r.squashReason = *s;
                    r.squashId = static_cast<std::uint64_t>(
                        argNum(ev, "squash_id", 0));
                    r.execTicks = argNum(ev, "exec_ticks", 0);
                }
            } else if (ev.name == "squash-completed") {
                // Completed-but-uncommitted work discarded.
                InstRec& r = insts[ev.tid];
                r.squashed = true;
                if (const std::string* s = argValue(ev, "reason"))
                    r.squashReason = *s;
                r.squashId = static_cast<std::uint64_t>(
                    argNum(ev, "squash_id", 0));
                r.execTicks = argNum(ev, "exec_ticks", r.execTicks);
            }
            continue;
        }

        if (isExec) {
            if (ev.name == "stall-read") {
                InstRec& r = insts[ev.tid];
                if (ev.phase == Phase::Begin) {
                    r.stallOpen = ev.ts;
                } else if (ev.phase == Phase::End &&
                           r.stallOpen >= 0) {
                    r.stalls.emplace_back(r.stallOpen, ev.ts);
                    r.stallOpen = -1;
                }
            } else if (ev.phase == Phase::Begin) {
                InstRec& r = insts[ev.tid];
                r.execBegin = ev.ts;
                r.containerCreation =
                    argNum(ev, "container_creation", 0);
                r.runtimeSetup = argNum(ev, "runtime_setup", 0);
            } else if (ev.phase == Phase::End) {
                InstRec& r = insts[ev.tid];
                r.execEnd = ev.ts;
                r.execTicks = argNum(ev, "exec_ticks", r.execTicks);
            }
            continue;
        }

        if (!isEngine || ev.phase != Phase::Instant)
            continue;
        if (ev.name == "invoke") {
            InvRec& inv = invs[ev.tid];
            inv.submit = ev.ts;
            inv.spec = std::strcmp(ev.category, cat::kSpec) == 0;
            if (const std::string* a = argValue(ev, "app"))
                inv.app = *a;
        } else if (ev.name == "complete") {
            invs[ev.tid].complete = ev.ts;
        } else if (ev.name == "reject") {
            ++report.rejectedInvocations;
        } else if (ev.name == "commit") {
            if (const std::string* o = argValue(ev, "order"))
                invs[ev.tid].commits[*o] = ev.ts;
        } else if (ev.name == "squash") {
            const auto id =
                static_cast<std::uint64_t>(argNum(ev, "id", 0));
            if (id != 0) {
                squashParents[id] = static_cast<std::uint64_t>(
                    argNum(ev, "parent", 0));
            }
        }
    }

    // Speculation efficiency over every observed instance, analyzed
    // invocation or not: wasted work is global to the run.
    WastedWork& ww = report.speculation;
    for (const auto& [tid, r] : insts) {
        (void)tid;
        if (r.squashed) {
            ++ww.squashedInstances;
            const Tick wasted = r.execTicks > 0 ? r.execTicks : 0;
            ww.wastedTicks += wasted;
            const std::string reason =
                r.squashReason.empty() ? "unknown" : r.squashReason;
            ww.wastedByReason[reason] += wasted;
            ++ww.squashesByReason[reason];
            ww.wastedByDepth[cascadeDepth(squashParents,
                                          r.squashId)] += wasted;
        } else if (r.execEnd >= 0 && r.execTicks > 0) {
            ++ww.committedInstances;
            ww.usefulTicks += r.execTicks;
        }
    }

    // Per-invocation critical-path decomposition.
    for (auto& [id, inv] : invs) {
        if (inv.submit < 0 && inv.complete < 0 &&
            inv.commits.empty() && inv.instances.empty()) {
            continue; // artifact of map access, nothing recorded
        }
        if (inv.submit < 0 || inv.complete < 0) {
            ++report.incompleteInvocations;
            continue;
        }

        std::vector<Interval> intervals;
        std::size_t committed = 0;
        bool incomplete = false;
        for (std::uint64_t tid : inv.instances) {
            const InstRec& r = insts.at(tid);
            if (r.squashed)
                continue; // wasted work, not on the commit path
            if (r.lifeEnd < 0 || r.execBegin < 0 || r.execEnd < 0) {
                incomplete = true; // span dropped from the ring
                break;
            }
            ++committed;
            const Tick rsStart = r.execBegin - r.runtimeSetup;
            const Tick ccStart = rsStart - r.containerCreation;
            addInterval(intervals, r.lifeBegin, ccStart, kQueueing,
                        inv.submit, inv.complete);
            addInterval(intervals, ccStart, rsStart,
                        kContainerCreation, inv.submit, inv.complete);
            addInterval(intervals, rsStart, r.execBegin,
                        kRuntimeSetup, inv.submit, inv.complete);
            // Execution minus this instance's own stall windows; the
            // windows themselves become stallRead intervals, which
            // execution by *another* instance may still cover.
            Tick cursor = r.execBegin;
            for (const auto& [s, e] : r.stalls) {
                addInterval(intervals, cursor, s, kExecution,
                            inv.submit, inv.complete);
                addInterval(intervals, s, e, kStallRead, inv.submit,
                            inv.complete);
                cursor = std::max(cursor, e);
            }
            addInterval(intervals, cursor, r.execEnd, kExecution,
                        inv.submit, inv.complete);
            // Completed -> commit decision (validation / ordering).
            Tick commitTs = r.lifeEnd;
            if (inv.spec) {
                auto cit = inv.commits.find(r.order);
                if (cit != inv.commits.end())
                    commitTs = cit->second;
            }
            addInterval(intervals, r.execEnd, commitTs, kValidation,
                        inv.submit, inv.complete);
        }
        if (incomplete) {
            ++report.incompleteInvocations;
            continue;
        }

        // Sweep the elementary intervals between boundary points; the
        // highest-priority covering interval labels each one, gaps
        // are commit/control-plane wait. The labels tile
        // [submit, complete] exactly, so the segments sum to the
        // measured end-to-end latency by construction.
        std::vector<Tick> bounds = {inv.submit, inv.complete};
        for (const Interval& iv : intervals) {
            bounds.push_back(iv.start);
            bounds.push_back(iv.end);
        }
        std::sort(bounds.begin(), bounds.end());
        bounds.erase(std::unique(bounds.begin(), bounds.end()),
                     bounds.end());

        InvocationPath path;
        path.id = id;
        path.app = inv.app;
        path.submittedAt = inv.submit;
        path.completedAt = inv.complete;
        path.committedInstances = committed;
        for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
            const Tick a = bounds[i];
            const Tick b = bounds[i + 1];
            int best = 0;
            for (const Interval& iv : intervals) {
                if (iv.start <= a && iv.end >= b)
                    best = std::max(best, iv.prio);
            }
            segmentFor(path.segments, best) += b - a;
        }

        report.totals.add(path.segments);
        AppPathSummary& app = report.perApp[path.app];
        ++app.invocations;
        app.totals.add(path.segments);
        report.invocations.push_back(std::move(path));
    }

    return report;
}

std::string
CriticalPathReport::table() const
{
    TextTable t;
    t.header({"app", "n", "e2e", "queue", "cold", "setup", "exec",
              "stall", "valid", "wait"});
    auto row = [&](const std::string& name, std::size_t n,
                   const SegmentBreakdown& b) {
        const double total = static_cast<double>(b.total());
        auto share = [&](Tick part) {
            if (total <= 0.0)
                return fmtPercentOrDash(
                    std::numeric_limits<double>::quiet_NaN());
            return fmtPercent(static_cast<double>(part) / total);
        };
        t.row({name, std::to_string(n),
               fmtMs(ticksToMs(b.total()) /
                     (n > 0 ? static_cast<double>(n) : 1.0)),
               share(b.queueing), share(b.containerCreation),
               share(b.runtimeSetup), share(b.execution),
               share(b.stallRead), share(b.validation),
               share(b.commitWait)});
    };
    for (const auto& [name, app] : perApp)
        row(name, app.invocations, app.totals);
    if (perApp.size() > 1) {
        t.separator();
        row("all", invocations.size(), totals);
    }

    std::string out = t.render();
    out += strFormat(
        "\nspeculation: useful %.1f ms, wasted %.1f ms (%s), "
        "%llu committed / %llu squashed instances\n",
        ticksToMs(speculation.usefulTicks),
        ticksToMs(speculation.wastedTicks),
        fmtPercentOrDash(speculation.wastedFraction()).c_str(),
        static_cast<unsigned long long>(speculation.committedInstances),
        static_cast<unsigned long long>(
            speculation.squashedInstances));
    for (const auto& [reason, ticks] : speculation.wastedByReason) {
        out += strFormat(
            "  %-24s %6llu squashes  %10.1f ms wasted\n",
            reason.c_str(),
            static_cast<unsigned long long>(
                speculation.squashesByReason.at(reason)),
            ticksToMs(ticks));
    }
    for (const auto& [depth, ticks] : speculation.wastedByDepth) {
        out += strFormat("  cascade depth %-11d %10.1f ms wasted\n",
                         depth, ticksToMs(ticks));
    }
    if (rejectedInvocations > 0 || incompleteInvocations > 0) {
        out += strFormat(
            "  (%llu rejected, %llu incomplete in trace)\n",
            static_cast<unsigned long long>(rejectedInvocations),
            static_cast<unsigned long long>(incompleteInvocations));
    }
    return out;
}

void
CriticalPathReport::printTable() const
{
    std::fputs(table().c_str(), stdout);
}

} // namespace specfaas::obs
