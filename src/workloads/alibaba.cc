#include "alibaba.hh"

#include <algorithm>

#include "app_helpers.hh"

#include "common/logging.hh"

namespace specfaas {

namespace {

/** One node of the generated call tree. */
struct TreeNode
{
    std::string name;
    double serviceMs = 7.5;
    bool reads = false;
    bool writes = false;
    bool guarded = false; // conditional call from the parent
    std::vector<TreeNode> children;
};

std::size_t
countNodes(const TreeNode& n)
{
    std::size_t c = 1;
    for (const auto& ch : n.children)
        c += countNodes(ch);
    return c;
}

/**
 * Grow a call tree with trace-like fan-out. Fan-out shrinks with
 * depth (gathers at the top, leaves below), matching the multi-tier
 * pattern of Figure 2.
 */
TreeNode
growTree(Rng& rng, const AlibabaTraceConfig& cfg, std::uint32_t app,
         std::uint32_t depth, std::uint32_t& counter,
         std::size_t& budget)
{
    TreeNode n;
    n.name = strFormat("Ali%u_f%u", app, counter++);
    n.serviceMs = std::max(
        1.0, rng.lognormal(cfg.meanServiceMs, 0.45));
    n.reads = rng.bernoulli(cfg.readFraction);
    n.writes = rng.bernoulli(cfg.writeFraction);

    if (depth >= cfg.maxDepth || budget == 0)
        return n;
    // A node only becomes a gather (caller) when enough budget
    // remains for a realistic fan-out; otherwise it stays a leaf so
    // the mean callees-per-caller stays near the trace value.
    if (depth > 1 && budget < 3)
        return n;

    // Mean fan-out decays gently with depth; the root fans out
    // widest (gathers at the top, services below), keeping the mean
    // callee count per calling function near the trace's 3.4.
    const double base = cfg.meanFanout * (depth == 1 ? 1.3 : 1.0) /
                        (1.0 + 0.18 * (depth - 1));
    auto kids = static_cast<std::size_t>(base + rng.uniform(0.0, 1.0));
    // Interior nodes call at least one service; leaves appear when
    // the budget runs out or depth is reached.
    if (depth <= 2)
        kids = std::max<std::size_t>(kids, 3);
    kids = std::min(kids, budget);
    for (std::size_t i = 0; i < kids && budget > 0; ++i) {
        --budget;
        TreeNode child =
            growTree(rng, cfg, app, depth + 1, counter, budget);
        child.guarded = rng.bernoulli(0.22); // some calls conditional
        n.children.push_back(std::move(child));
    }
    return n;
}

/** Build the FunctionDef for one tree node (and recurse). */
void
emitFunctions(const TreeNode& n, Application& app)
{
    FunctionDef d;
    d.name = n.name;
    // Split the service time around the call sites: half before the
    // first call, half after the last, like a real gather handler.
    const Tick half = msToTicks(n.serviceMs / 2.0);
    d.body.push_back(Op::compute(std::max<Tick>(half, msToTicks(0.5))));

    if (n.reads) {
        d.body.push_back(
            Op::storageRead(fns::keyOf("ali", "item"), "rec"));
    }

    ValueFn args = [](const Env& e) {
        Value a = Value::object({});
        a["item"] = e.input.at("item");
        return a;
    };

    for (std::size_t i = 0; i < n.children.size(); ++i) {
        const TreeNode& child = n.children[i];
        const std::string var = strFormat("c%zu", i);
        if (child.guarded) {
            d.body.push_back(Op::callIf(fns::bucketGuard("item", 10),
                                        child.name, args, var));
        } else {
            d.body.push_back(Op::call(child.name, args, var));
        }
    }

    d.body.push_back(Op::compute(std::max<Tick>(half, msToTicks(0.5))));

    if (n.writes) {
        d.body.push_back(Op::storageWrite(
            [name = n.name](const Env& e) {
                return "alio:" + name + ":" +
                       e.input.at("item").toString();
            },
            [](const Env& e) {
                Value rec = Value::object({});
                rec["k"] = e.input.at("item");
                return rec;
            }));
    }

    // Leaf services with no global access are pure: their inputs
    // fully determine their outputs (§V-B annotation).
    d.pureAnnotation =
        !n.reads && !n.writes && n.children.empty();

    const bool has_read = n.reads;
    const std::size_t nchildren = n.children.size();
    d.output = [name = n.name, has_read, nchildren](const Env& e) {
        // Low-cardinality aggregate of the children results plus any
        // read state; deterministic for a given input + store state.
        std::int64_t acc =
            bucketOf(name + e.input.at("item").toString(), 13);
        if (has_read)
            acc += e.var("rec").at("v").asInt();
        for (std::size_t i = 0; i < nchildren; ++i) {
            const Value& c = e.var(strFormat("c%zu", i));
            if (c.isObject())
                acc += c.at("v").asInt();
        }
        Value out = Value::object({});
        out["v"] = Value(acc % 29);
        return out;
    };
    app.functions.push_back(std::move(d));

    for (const auto& child : n.children)
        emitFunctions(child, app);
}

} // namespace

Application
makeAlibabaApp(const AlibabaTraceConfig& config, std::uint32_t index)
{
    Application app;
    app.name = strFormat("AliApp%u", index + 1);
    app.suite = "Alibaba";
    app.type = WorkflowType::Implicit;

    Rng rng(config.seed + index * 7919);
    std::uint32_t counter = 0;
    // Vary the per-application size around the trace mean.
    const double target =
        config.meanFunctions * rng.uniform(0.75, 1.25);
    std::size_t budget = static_cast<std::size_t>(
        std::max(4.0, target)) - 1;
    TreeNode root = growTree(rng, config, index, 1, counter, budget);
    app.rootFunction = root.name;
    emitFunctions(root, app);

    DatasetConfig ds = config.dataset;
    app.inputGen = [ds](Rng& r) {
        Value v = Value::object({});
        v["item"] = Value(strFormat(
            "k%llu", static_cast<unsigned long long>(
                         r.zipf(ds.items, ds.zipfS))));
        return v;
    };
    const auto items = ds.items;
    app.seedStore = [items](KvStore& store, Rng& r) {
        for (std::uint32_t i = 0; i < items; ++i) {
            store.put(strFormat("ali:\"k%u\"", i),
                      Value::object({{"v", Value(r.uniformInt(
                                                std::int64_t{0}, 20))}}));
        }
    };
    return app;
}

std::vector<Application>
alibabaSuite(const AlibabaTraceConfig& config)
{
    std::vector<Application> suite;
    for (std::uint32_t i = 0; i < config.applications; ++i)
        suite.push_back(makeAlibabaApp(config, i));
    return suite;
}

} // namespace specfaas
