#include "suites.hh"

namespace specfaas {

SuiteOptions::SuiteOptions() : trainTicket(trainTicketDataset()) {}

std::unique_ptr<ApplicationRegistry>
makeAllSuites(const SuiteOptions& options)
{
    auto registry = std::make_unique<ApplicationRegistry>();
    for (auto& app : faasChainSuite(options.faasChain))
        registry->add(std::move(app));
    for (auto& app : trainTicketSuite(options.trainTicket))
        registry->add(std::move(app));
    for (auto& app : alibabaSuite(options.alibaba))
        registry->add(std::move(app));
    return registry;
}

} // namespace specfaas
