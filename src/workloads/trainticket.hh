/**
 * @file
 * The TrainTicket suite: five implicit-workflow applications rebuilt
 * from the paper's characterization (Table I: avg 11.2 functions,
 * 1.8 cross-function branches, 4.8 callees per calling function, max
 * call depth 3, ~269 ms warm execution; Observation 2: the dominant
 * function sequence covers ~98% of invocations).
 *
 * Every application is a root function that calls tier-2 services as
 * subroutines; some tier-2 services are gathers that call tier-3
 * services. Branches are guarded calls whose guards are derived
 * deterministically from low-cardinality input fields, giving the
 * ~98% path determinism the paper measures.
 */

#ifndef SPECFAAS_WORKLOADS_TRAINTICKET_HH
#define SPECFAAS_WORKLOADS_TRAINTICKET_HH

#include <vector>

#include "workflow/workflow.hh"
#include "workloads/datasets.hh"

namespace specfaas {

/** @{ Individual TrainTicket applications. */
Application makeTcktApp(const DatasetConfig& config);
Application makeTripInApp(const DatasetConfig& config);
Application makeQueryTrvlApp(const DatasetConfig& config);
Application makeGetLeftApp(const DatasetConfig& config);
Application makeCancelApp(const DatasetConfig& config);
/** @} */

/** All five applications, in Table II order. */
std::vector<Application> trainTicketSuite(const DatasetConfig& config);

/** Dataset defaults tuned for TrainTicket (98% path determinism,
 * ticket-shaped requests). */
DatasetConfig trainTicketDataset();

} // namespace specfaas

#endif // SPECFAAS_WORKLOADS_TRAINTICKET_HH
