#include "app_helpers.hh"

namespace specfaas {

FunctionDef
condFunction(std::string name, std::string branch_field, double ms)
{
    FunctionDef d;
    d.name = std::move(name);
    d.body.push_back(Op::compute(msToTicks(ms)));
    d.output = fns::inputField(std::move(branch_field));
    return d;
}

FunctionDef
condFromStore(std::string name, std::string key_prefix,
              std::string key_field, double ms)
{
    FunctionDef d;
    d.name = std::move(name);
    d.body.push_back(Op::compute(msToTicks(ms)));
    d.body.push_back(Op::storageRead(
        fns::keyOf(std::move(key_prefix), std::move(key_field)), "flag"));
    d.output = [](const Env& e) {
        return Value(e.var("flag").at("v").truthy());
    };
    return d;
}

FunctionDef
worker(std::string name, double ms, ValueFn out)
{
    FunctionDef d;
    d.name = std::move(name);
    d.body.push_back(Op::compute(msToTicks(ms)));
    d.output = std::move(out);
    return d;
}

} // namespace specfaas
