/**
 * @file
 * Small builders shared by the application suites.
 */

#ifndef SPECFAAS_WORKLOADS_APP_HELPERS_HH
#define SPECFAAS_WORKLOADS_APP_HELPERS_HH

#include <string>

#include "common/value.hh"
#include "workflow/function_def.hh"
#include "workloads/datasets.hh"

namespace specfaas {

/** Value builders used by function bodies. */
namespace fns {

/** Echo the whole input. */
inline ValueFn
passInput()
{
    return [](const Env& e) { return e.input; };
}

/** One field of the input. */
inline ValueFn
inputField(std::string name)
{
    return [name = std::move(name)](const Env& e) {
        return e.input.at(name);
    };
}

/** Key "<prefix>:<input.field>". */
inline KeyFn
keyOf(std::string prefix, std::string field)
{
    return [prefix = std::move(prefix),
            field = std::move(field)](const Env& e) {
        return prefix + ":" + e.input.at(field).toString();
    };
}

/** Key "<prefix>:<input.f1>:<input.f2>". */
inline KeyFn
keyOf2(std::string prefix, std::string f1, std::string f2)
{
    return [prefix = std::move(prefix), f1 = std::move(f1),
            f2 = std::move(f2)](const Env& e) {
        return prefix + ":" + e.input.at(f1).toString() + ":" +
               e.input.at(f2).toString();
    };
}

/**
 * Guard that is true for all but 1-in-@p buckets of the values of
 * @p field — a deterministic, input-derived branch with a dominant
 * direction of roughly (buckets-1)/buckets.
 */
inline BoolFn
bucketGuard(std::string field, std::int64_t buckets)
{
    return [field = std::move(field), buckets](const Env& e) {
        return bucketOf(e.input.at(field).toString(), buckets) != 0;
    };
}

/** Guard reading a boolean branch field of the input. */
inline BoolFn
boolGuard(std::string field)
{
    return [field = std::move(field)](const Env& e) {
        return e.input.at(field).truthy();
    };
}

} // namespace fns

/**
 * A branch-condition function for explicit `when` nodes: computes for
 * @p ms and returns the boolean branch field of its input.
 */
FunctionDef condFunction(std::string name, std::string branch_field,
                         double ms);

/**
 * A branch-condition function whose outcome comes from a seeded
 * global record: reads "<key_prefix>:<input.key_field>" and returns
 * its truthiness. The seeding controls the branch bias.
 */
FunctionDef condFromStore(std::string name, std::string key_prefix,
                          std::string key_field, double ms);

/**
 * A leaf worker: computes for @p ms and produces @p out.
 */
FunctionDef worker(std::string name, double ms, ValueFn out);

} // namespace specfaas

#endif // SPECFAAS_WORKLOADS_APP_HELPERS_HH
