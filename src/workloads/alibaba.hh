/**
 * @file
 * The Alibaba suite: five implicit-workflow applications synthesized
 * from the statistics the paper extracts from Alibaba's production
 * microservice traces (Table I: avg 17.6 functions per application,
 * 3.4 callees per calling function, max call-graph depth 5, ~387 ms
 * warm execution; Observation 2: the dominant sequence covers ~90%
 * of invocations; Fig. 14 notes a 90% branch-predictor hit rate).
 *
 * The production traces are proprietary; the generator reproduces
 * their aggregate shape deterministically from a seed: a call tree
 * with trace-like fan-out per tier, guarded (conditional) calls with
 * ~90% dominant direction, lognormal service times, and sparse
 * global-storage access per Observation 3.
 */

#ifndef SPECFAAS_WORKLOADS_ALIBABA_HH
#define SPECFAAS_WORKLOADS_ALIBABA_HH

#include <cstdint>
#include <vector>

#include "workflow/workflow.hh"
#include "workloads/datasets.hh"

namespace specfaas {

/** Shape parameters of the synthetic Alibaba call-graph generator. */
struct AlibabaTraceConfig
{
    std::uint64_t seed = 20230225;
    std::uint32_t applications = 5;
    /** Target mean functions per application (Table I: 17.6). */
    double meanFunctions = 17.6;
    /** Mean callees per calling function (Table I: 3.4). */
    double meanFanout = 4.6;
    /** Maximum call depth (Table I: 5). */
    std::uint32_t maxDepth = 5;
    /** Dominant-direction probability of conditional calls. */
    double callBias = 0.90;
    /** Mean leaf service time, ms (calibrated to ~387 ms/app). */
    double meanServiceMs = 7.5;
    /** Fraction of functions that read seeded global records. */
    double readFraction = 0.25;
    /** Fraction of functions that write global records. */
    double writeFraction = 0.12;
    /** Request-key universe (Zipf). */
    DatasetConfig dataset{/*users=*/32, /*items=*/250, /*zipfS=*/1.5,
                          /*branchBias=*/0.90, /*branchFields=*/2};
};

/** Generate one application (deterministic in config.seed + index). */
Application makeAlibabaApp(const AlibabaTraceConfig& config,
                           std::uint32_t index);

/** Generate the whole suite. */
std::vector<Application> alibabaSuite(const AlibabaTraceConfig& config);

} // namespace specfaas

#endif // SPECFAAS_WORKLOADS_ALIBABA_HH
