#include "datasets.hh"

#include "common/logging.hh"

namespace specfaas {

Value
drawRequest(Rng& rng, const DatasetConfig& config)
{
    Value v = Value::object({});
    v["user"] = Value(strFormat(
        "u%llu", static_cast<unsigned long long>(
                     rng.uniformInt(std::uint64_t{config.users}))));
    v["item"] = Value(strFormat(
        "i%llu", static_cast<unsigned long long>(
                     rng.zipf(config.items, config.zipfS))));
    v["qty"] = Value(static_cast<std::int64_t>(rng.uniformInt(4) + 1));
    for (std::uint32_t i = 0; i < config.branchFields; ++i) {
        v[strFormat("b%u", i)] = Value(rng.bernoulli(config.branchBias));
    }
    return v;
}

Value
drawTicketRequest(Rng& rng, const DatasetConfig& config)
{
    Value v = Value::object({});
    v["user"] = Value(strFormat(
        "u%llu", static_cast<unsigned long long>(
                     rng.uniformInt(std::uint64_t{config.users}))));
    // Route and date are the memoization-relevant pair: Zipf-popular
    // routes on a small set of travel dates, as in real ticket data.
    v["route"] = Value(strFormat(
        "r%llu", static_cast<unsigned long long>(
                     rng.zipf(config.items, config.zipfS))));
    v["date"] = Value(strFormat(
        "d%llu",
        static_cast<unsigned long long>(rng.zipf(8, 1.6))));
    v["cls"] = Value(rng.bernoulli(0.8) ? "economy" : "first");
    for (std::uint32_t i = 0; i < config.branchFields; ++i) {
        v[strFormat("b%u", i)] = Value(rng.bernoulli(config.branchBias));
    }
    return v;
}

std::int64_t
bucketOf(const std::string& s, std::int64_t buckets)
{
    SPECFAAS_ASSERT(buckets > 0, "bucketOf with no buckets");
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return static_cast<std::int64_t>(h % static_cast<std::uint64_t>(buckets));
}

} // namespace specfaas
