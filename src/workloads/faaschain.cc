#include "faaschain.hh"

#include "app_helpers.hh"

#include "common/logging.hh"

namespace specfaas {

namespace {

/** Seed "avail"-style boolean records with a given dominant bias. */
void
seedFlags(KvStore& store, Rng& rng, const std::string& prefix,
          const std::string& item_prefix, std::uint32_t count,
          double bias)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        Value rec = Value::object({});
        rec["v"] = Value(rng.bernoulli(bias));
        store.put(strFormat("%s:\"%s%u\"", prefix.c_str(),
                            item_prefix.c_str(), i),
                  std::move(rec));
    }
}

/** Seed small integer records per item. */
void
seedBuckets(KvStore& store, Rng& rng, const std::string& prefix,
            const std::string& item_prefix, std::uint32_t count,
            std::int64_t buckets)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        Value rec = Value::object({});
        rec["v"] = Value(rng.uniformInt(std::int64_t{0}, buckets - 1));
        store.put(strFormat("%s:\"%s%u\"", prefix.c_str(),
                            item_prefix.c_str(), i),
                  std::move(rec));
    }
}

std::function<Value(Rng&)>
requestGen(DatasetConfig config)
{
    return [config](Rng& rng) { return drawRequest(rng, config); };
}

} // namespace

Application
makeLoginApp(const DatasetConfig& config)
{
    Application app;
    app.name = "Login";
    app.suite = "FaaSChain";
    app.type = WorkflowType::Explicit;

    // 5 functions, 3 cross-function branches, no data dependences.
    app.functions.push_back(condFunction("LgValidate", "b0", 5.0));

    FunctionDef auth = condFunction("LgAuth", "b1", 8.0);
    auth.body.insert(auth.body.begin(),
                     Op::storageRead(fns::keyOf("pw", "user"), "pw"));
    app.functions.push_back(std::move(auth));

    app.functions.push_back(condFunction("LgSession", "b2", 6.0));

    FunctionDef grant = worker("LgGrant", 7.0, [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["tok"] = Value(bucketOf(e.input.at("user").toString(), 16));
        return out;
    });
    grant.body.push_back(Op::storageWrite(
        fns::keyOf("sess", "user"), [](const Env& e) {
            Value rec = Value::object({});
            rec["tok"] =
                Value(bucketOf(e.input.at("user").toString(), 16));
            return rec;
        }));
    app.functions.push_back(std::move(grant));

    app.functions.push_back(
        worker("LgFail", 3.0, [](const Env&) {
            return Value::object({{"ok", Value(false)}});
        }));

    app.workflow =
        when("LgValidate",
             when("LgAuth",
                  when("LgSession", task("LgGrant"), task("LgFail")),
                  task("LgFail")),
             task("LgFail"));

    app.inputGen = requestGen(config);
    auto users = config.users;
    app.seedStore = [users](KvStore& store, Rng& rng) {
        seedBuckets(store, rng, "pw", "u", users, 64);
    };
    return app;
}

Application
makeBankingApp(const DatasetConfig& config)
{
    Application app;
    app.name = "Banking";
    app.suite = "FaaSChain";
    app.type = WorkflowType::Explicit;

    app.functions.push_back(condFunction("BkCheckAcct", "b0", 6.0));

    FunctionDef fraud = condFunction("BkFraud", "b1", 9.0);
    // Fraud scoring logs evidence to a local temp file (§VI COW).
    fraud.body.push_back(Op::fileWrite(
        [](const Env&) { return std::string("fraud.log"); }));
    app.functions.push_back(std::move(fraud));

    FunctionDef balance = condFunction("BkBalance", "b2", 7.0);
    balance.body.insert(balance.body.begin(),
                        Op::storageRead(fns::keyOf("bal", "user"),
                                        "bal"));
    app.functions.push_back(std::move(balance));

    FunctionDef commit = worker("BkCommit", 8.0, [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["amt"] = Value(e.input.at("qty").asInt() * 10);
        return out;
    });
    commit.body.push_back(Op::storageWrite(
        fns::keyOf("txn", "user"), [](const Env& e) {
            Value rec = Value::object({});
            rec["amt"] = Value(e.input.at("qty").asInt() * 10);
            return rec;
        }));
    app.functions.push_back(std::move(commit));

    app.functions.push_back(worker("BkReject", 3.0, [](const Env&) {
        return Value::object({{"ok", Value(false)}});
    }));

    app.workflow =
        when("BkCheckAcct",
             when("BkFraud",
                  when("BkBalance", task("BkCommit"),
                       task("BkReject")),
                  task("BkReject")),
             task("BkReject"));

    app.inputGen = requestGen(config);
    auto users = config.users;
    app.seedStore = [users](KvStore& store, Rng& rng) {
        seedBuckets(store, rng, "bal", "u", users, 100);
    };
    return app;
}

Application
makeFlightBookApp(const DatasetConfig& config)
{
    Application app;
    app.name = "FlightBook";
    app.suite = "FaaSChain";
    app.type = WorkflowType::Explicit;

    // 7 functions, 4 branches, no data dependences.
    app.functions.push_back(condFunction("FbSearch", "b0", 9.0));

    FunctionDef seat = condFunction("FbSeat", "b1", 7.0);
    seat.body.insert(seat.body.begin(),
                     Op::storageRead(fns::keyOf("seat", "item"),
                                     "seat"));
    app.functions.push_back(std::move(seat));

    app.functions.push_back(condFunction("FbPrice", "b2", 6.0));
    app.functions.push_back(condFunction("FbPay", "b3", 8.0));

    FunctionDef confirm = worker("FbConfirm", 7.0, [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["flight"] = e.input.at("item");
        return out;
    });
    confirm.body.push_back(Op::storageWrite(
        fns::keyOf("book", "user"), [](const Env& e) {
            Value rec = Value::object({});
            rec["flight"] = e.input.at("item");
            return rec;
        }));
    confirm.body.push_back(Op::http());
    app.functions.push_back(std::move(confirm));

    app.functions.push_back(worker("FbRefund", 5.0, [](const Env&) {
        return Value::object({{"ok", Value(false)},
                              {"refund", Value(true)}});
    }));
    app.functions.push_back(worker("FbCancel", 3.0, [](const Env&) {
        return Value::object({{"ok", Value(false)}});
    }));

    app.workflow =
        when("FbSearch",
             when("FbSeat",
                  when("FbPrice",
                       when("FbPay", task("FbConfirm"),
                            task("FbRefund")),
                       task("FbCancel")),
                  task("FbCancel")),
             task("FbCancel"));

    app.inputGen = requestGen(config);
    auto items = config.items;
    app.seedStore = [items](KvStore& store, Rng& rng) {
        seedBuckets(store, rng, "seat", "i", items, 16);
    };
    return app;
}

Application
makeHotelBookApp(const DatasetConfig& config)
{
    Application app;
    app.name = "HotelBook";
    app.suite = "FaaSChain";
    app.type = WorkflowType::Explicit;

    // 10 functions, 1 branch, sequence + storage data dependences.
    FunctionDef parse = worker("HbParse", 5.0, [](const Env& e) {
        Value out = Value::object({});
        out["hotel"] = e.input.at("item");
        out["qty"] = e.input.at("qty");
        return out;
    });
    parse.body.push_back(Op::fileWrite(
        [](const Env&) { return std::string("req.json"); }));
    app.functions.push_back(std::move(parse));

    FunctionDef findh = worker("HbFind", 7.0, [](const Env& e) {
        Value out = Value::object({});
        out["hotel"] = e.input.at("hotel");
        out["qty"] = e.input.at("qty");
        out["rate"] = e.var("h").at("v");
        return out;
    });
    findh.body.insert(findh.body.begin(),
                      Op::storageRead(fns::keyOf("hotel", "hotel"),
                                      "h"));
    app.functions.push_back(std::move(findh));

    app.functions.push_back(
        condFromStore("HbAvail", "avail", "hotel", 6.0));

    app.functions.push_back(worker("HbPrice", 8.0, [](const Env& e) {
        Value out = e.input;
        out["price"] = Value((e.input.at("rate").asInt() + 1) *
                             e.input.at("qty").asInt() % 32);
        return out;
    }));

    FunctionDef discount = worker("HbDiscount", 6.0, [](const Env& e) {
        Value out = e.input;
        const std::int64_t promo = e.var("promo").at("v").asInt();
        out["price"] =
            Value(std::max<std::int64_t>(
                0, e.input.at("price").asInt() - promo));
        return out;
    });
    discount.body.insert(
        discount.body.begin(),
        Op::storageRead([](const Env&) { return std::string("cfg:promo"); },
                        "promo"));
    app.functions.push_back(std::move(discount));

    // Producer: reserves the room and records it in global storage.
    FunctionDef reserve = worker("HbReserve", 9.0, fns::passInput());
    reserve.body.push_back(Op::storageWrite(
        fns::keyOf("room", "hotel"), [](const Env& e) {
            Value rec = Value::object({});
            rec["held"] = e.input.at("qty");
            return rec;
        }));
    app.functions.push_back(std::move(reserve));

    // Consumer: reads the reservation record the producer wrote —
    // the in-invocation RAW dependence that exercises the Data
    // Buffer and the squash minimizer.
    FunctionDef charge = worker("HbCharge", 8.0, [](const Env& e) {
        Value out = Value::object({});
        out["hotel"] = e.input.at("hotel");
        out["paid"] = e.input.at("price");
        out["held"] = e.var("room").at("held");
        return out;
    });
    charge.body.insert(charge.body.begin(),
                       Op::storageRead(fns::keyOf("room", "hotel"),
                                       "room"));
    app.functions.push_back(std::move(charge));

    FunctionDef conf = worker("HbSendConf", 5.0, fns::passInput());
    conf.body.push_back(Op::http());
    app.functions.push_back(std::move(conf));

    app.functions.push_back(worker("HbNoAvail", 3.0, [](const Env&) {
        return Value::object({{"ok", Value(false)}});
    }));

    app.functions.push_back(worker("HbFinal", 4.0, [](const Env& e) {
        Value out = Value::object({});
        out["done"] = Value(true);
        out["res"] = e.input;
        return out;
    }));

    app.workflow = sequence({
        task("HbParse"),
        task("HbFind"),
        when("HbAvail",
             sequence({task("HbPrice"), task("HbDiscount"),
                       task("HbReserve"), task("HbCharge"),
                       task("HbSendConf")}),
             task("HbNoAvail")),
        task("HbFinal"),
    });

    app.inputGen = requestGen(config);
    auto items = config.items;
    const double bias = config.branchBias;
    app.seedStore = [items, bias](KvStore& store, Rng& rng) {
        seedBuckets(store, rng, "hotel", "i", items, 8);
        seedFlags(store, rng, "avail", "i", items, bias);
        store.put("cfg:promo", Value::object({{"v", Value(2)}}));
    };
    return app;
}

Application
makeOnlPurchApp(const DatasetConfig& config)
{
    Application app;
    app.name = "OnlPurch";
    app.suite = "FaaSChain";
    app.type = WorkflowType::Explicit;

    // 12 functions, 2 branches, DAG depth 10.
    FunctionDef parse = worker("OpParse", 6.0, [](const Env& e) {
        Value out = Value::object({});
        out["item"] = e.input.at("item");
        out["qty"] = e.input.at("qty");
        return out;
    });
    parse.body.push_back(Op::fileWrite(
        [](const Env&) { return std::string("cart.json"); }));
    app.functions.push_back(std::move(parse));

    FunctionDef price = worker("OpPrice", 8.0, [](const Env& e) {
        Value out = e.input;
        out["cost"] = e.var("p").at("v");
        return out;
    });
    price.body.insert(price.body.begin(),
                      Op::storageRead(fns::keyOf("price", "item"), "p"));
    app.functions.push_back(std::move(price));

    app.functions.push_back(
        condFromStore("OpStock", "stock", "item", 6.0));

    FunctionDef reserve = worker("OpReserve", 8.0, fns::passInput());
    reserve.body.push_back(Op::storageWrite(
        fns::keyOf("resv", "item"), [](const Env& e) {
            Value rec = Value::object({});
            rec["qty"] = e.input.at("qty");
            return rec;
        }));
    app.functions.push_back(std::move(reserve));

    FunctionDef tax = worker("OpTax", 7.0, [](const Env& e) {
        Value out = e.input;
        out["total"] = Value((e.input.at("cost").asInt() *
                                  e.input.at("qty").asInt() +
                              e.var("tax").at("v").asInt()) %
                             64);
        return out;
    });
    tax.body.insert(tax.body.begin(),
                    Op::storageRead(
                        [](const Env&) { return std::string("cfg:tax"); },
                        "tax"));
    app.functions.push_back(std::move(tax));

    app.functions.push_back(
        condFromStore("OpPayAuth", "payok", "item", 8.0));

    // Reads the reservation the producer wrote (in-invocation RAW).
    FunctionDef chargec = worker("OpCharge", 9.0, [](const Env& e) {
        Value out = Value::object({});
        out["item"] = e.input.at("item");
        out["charged"] = e.input.at("total");
        out["resv"] = e.var("r").at("qty");
        return out;
    });
    chargec.body.insert(chargec.body.begin(),
                        Op::storageRead(fns::keyOf("resv", "item"),
                                        "r"));
    chargec.body.push_back(Op::http());
    app.functions.push_back(std::move(chargec));

    FunctionDef inv = worker("OpUpdInv", 7.0, fns::passInput());
    inv.body.push_back(Op::storageWrite(
        fns::keyOf("inv", "item"), [](const Env& e) {
            Value rec = Value::object({});
            rec["sold"] = e.input.at("resv");
            return rec;
        }));
    app.functions.push_back(std::move(inv));

    FunctionDef email = worker("OpEmail", 5.0, [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["item"] = e.input.at("item");
        return out;
    });
    email.body.push_back(Op::http());
    app.functions.push_back(std::move(email));

    app.functions.push_back(worker("OpPayFail", 4.0, [](const Env&) {
        return Value::object({{"ok", Value(false)},
                              {"why", Value("payment")}});
    }));
    app.functions.push_back(worker("OpNoStock", 3.0, [](const Env&) {
        return Value::object({{"ok", Value(false)},
                              {"why", Value("stock")}});
    }));
    app.functions.push_back(worker("OpSummary", 5.0, [](const Env& e) {
        Value out = Value::object({});
        out["done"] = Value(true);
        out["res"] = e.input;
        return out;
    }));

    app.workflow = sequence({
        task("OpParse"),
        task("OpPrice"),
        when("OpStock",
             sequence({task("OpReserve"), task("OpTax"),
                       when("OpPayAuth",
                            sequence({task("OpCharge"),
                                      task("OpUpdInv"),
                                      task("OpEmail")}),
                            task("OpPayFail"))}),
             task("OpNoStock")),
        task("OpSummary"),
    });

    app.inputGen = requestGen(config);
    auto items = config.items;
    const double bias = config.branchBias;
    app.seedStore = [items, bias](KvStore& store, Rng& rng) {
        seedBuckets(store, rng, "price", "i", items, 40);
        seedFlags(store, rng, "stock", "i", items, bias);
        seedFlags(store, rng, "payok", "i", items, bias);
        store.put("cfg:tax", Value::object({{"v", Value(7)}}));
    };
    return app;
}

Application
makeSmartHomeApp(const DatasetConfig& config)
{
    Application app;
    app.name = "SmartHome";
    app.suite = "FaaSChain";
    app.type = WorkflowType::Explicit;

    // The paper's running example (Listing 1 / Fig. 1): 7 functions,
    // 2 branches.
    app.functions.push_back(condFunction("ShLogin", "b0", 6.0));

    FunctionDef readt = worker("ShReadTemp", 7.0, [](const Env& e) {
        Value out = Value::object({});
        out["home"] = e.input.at("user");
        out["temp"] = e.var("t").at("v");
        return out;
    });
    readt.body.insert(readt.body.begin(),
                      Op::storageRead(fns::keyOf("temp", "user"), "t"));
    app.functions.push_back(std::move(readt));

    app.functions.push_back(worker("ShNormalize", 8.0, [](const Env& e) {
        Value out = Value::object({});
        out["home"] = e.input.at("home");
        out["t"] = Value(e.input.at("temp").asInt() % 5);
        return out;
    }));

    FunctionDef compare = worker("ShCompare", 5.0, [](const Env& e) {
        return Value(e.input.at("t").asInt() != 0);
    });
    app.functions.push_back(std::move(compare));

    FunctionDef air = worker("ShTurnAir", 9.0, fns::passInput());
    air.body.push_back(Op::http());
    app.functions.push_back(std::move(air));

    app.functions.push_back(worker("ShDone", 4.0, [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["home"] = e.input.isObject() ? e.input.at("home") : Value();
        return out;
    }));
    app.functions.push_back(worker("ShFail", 3.0, [](const Env&) {
        return Value::object({{"ok", Value(false)}});
    }));

    app.workflow =
        when("ShLogin",
             sequence({task("ShReadTemp"), task("ShNormalize"),
                       when("ShCompare", task("ShTurnAir")),
                       task("ShDone")}),
             task("ShFail"));

    app.inputGen = requestGen(config);
    auto users = config.users;
    const double bias = config.branchBias;
    app.seedStore = [users, bias](KvStore& store, Rng& rng) {
        // temp % 5 != 0 is the "turn the A/C on" direction; seed it
        // as the dominant outcome with probability `bias`.
        for (std::uint32_t i = 0; i < users; ++i) {
            const std::int64_t base =
                5 * rng.uniformInt(std::int64_t{0}, 5);
            const std::int64_t temp =
                rng.bernoulli(bias)
                    ? base + rng.uniformInt(std::int64_t{1}, 4)
                    : base;
            store.put(strFormat("temp:\"u%u\"", i),
                      Value::object({{"v", Value(temp)}}));
        }
    };
    return app;
}

std::vector<Application>
faasChainSuite(const DatasetConfig& config)
{
    std::vector<Application> suite;
    suite.push_back(makeLoginApp(config));
    suite.push_back(makeBankingApp(config));
    suite.push_back(makeFlightBookApp(config));
    suite.push_back(makeHotelBookApp(config));
    suite.push_back(makeOnlPurchApp(config));
    suite.push_back(makeSmartHomeApp(config));
    return suite;
}

} // namespace specfaas
