#include "trainticket.hh"

#include "app_helpers.hh"

#include "common/logging.hh"

namespace specfaas {

namespace {

std::function<Value(Rng&)>
ticketGen(DatasetConfig config)
{
    return [config](Rng& rng) {
        Value v = drawTicketRequest(rng, config);
        // Implicit workflows memoize the root on its whole input;
        // keep the payload low-cardinality (route/date only carry
        // information; user stays out of the request body, as the
        // paper's ticket dataset identifies trips, not shoppers).
        Value out = Value::object({});
        out["route"] = v.at("route");
        out["date"] = v.at("date");
        return out;
    };
}

/** Small args projection: {route}. */
ValueFn
routeArgs()
{
    return [](const Env& e) {
        Value a = Value::object({});
        a["route"] = e.input.at("route");
        return a;
    };
}

/** Args projection: {route, date}. */
ValueFn
routeDateArgs()
{
    return [](const Env& e) {
        Value a = Value::object({});
        a["route"] = e.input.at("route");
        a["date"] = e.input.at("date");
        return a;
    };
}

/** Tier-3 service: compute + optional read, low-cardinality output. */
FunctionDef
leafService(std::string name, double ms, std::string read_prefix,
            std::int64_t out_buckets)
{
    FunctionDef d;
    d.name = name;
    d.body.push_back(Op::compute(msToTicks(ms)));
    if (!read_prefix.empty()) {
        d.body.push_back(
            Op::storageRead(fns::keyOf(read_prefix, "route"), "rec"));
        d.output = [out_buckets](const Env& e) {
            Value out = Value::object({});
            out["v"] = Value((intOr(e.var("rec").at("v"), 0) + 1) %
                             out_buckets);
            return out;
        };
    } else {
        d.output = [name, out_buckets](const Env& e) {
            Value out = Value::object({});
            out["v"] = Value(bucketOf(
                name + e.input.at("route").toString(), out_buckets));
            return out;
        };
    }
    d.pureAnnotation = read_prefix.empty();
    return d;
}

void
seedRouteRecords(KvStore& store, Rng& rng, const std::string& prefix,
                 std::uint32_t routes, std::int64_t buckets)
{
    for (std::uint32_t i = 0; i < routes; ++i) {
        store.put(strFormat("%s:\"r%u\"", prefix.c_str(), i),
                  Value::object({{"v", Value(rng.uniformInt(
                                            std::int64_t{0},
                                            buckets - 1))}}));
    }
}

} // namespace

DatasetConfig
trainTicketDataset()
{
    DatasetConfig config;
    config.items = 150;   // routes
    config.zipfS = 1.8;   // popular routes dominate strongly
    config.branchBias = 0.98;
    config.branchFields = 2;
    return config;
}

Application
makeTcktApp(const DatasetConfig& config)
{
    Application app;
    app.name = "TcktApp";
    app.suite = "TrainTicket";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "TTOrder";

    // Root: books a ticket. 5 callees; QueryTrain is a tier-2 gather
    // with 4 callees; CreateBill calls a tier-3 tax service (depth 3).
    FunctionDef root;
    root.name = "TTOrder";
    root.body.push_back(Op::compute(msToTicks(6.0)));
    root.body.push_back(Op::call("TTGetStation", routeArgs(), "st"));
    root.body.push_back(Op::call("TTQueryTrain", routeDateArgs(), "qt"));
    root.body.push_back(Op::callIf(fns::bucketGuard("route", 50),
                                   "TTCheckUser", routeArgs(), "cu"));
    root.body.push_back(Op::compute(msToTicks(5.0)));
    root.body.push_back(Op::storageWrite(
        fns::keyOf2("order", "route", "date"), [](const Env& e) {
            Value rec = Value::object({});
            rec["price"] = e.var("qt").at("price");
            return rec;
        }));
    root.body.push_back(Op::call("TTCreateBill", routeDateArgs(), "cb"));
    root.body.push_back(Op::call("TTNotify", routeArgs(), "nt"));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["price"] = e.var("qt").at("price");
        out["bill"] = e.var("cb").at("v");
        return out;
    };
    app.functions.push_back(std::move(root));

    app.functions.push_back(
        leafService("TTGetStation", 7.0, "station", 12));

    FunctionDef query;
    query.name = "TTQueryTrain";
    query.body.push_back(Op::compute(msToTicks(5.0)));
    query.body.push_back(Op::call("TTSeatAvail", routeDateArgs(), "sa"));
    query.body.push_back(Op::call("TTPriceCalc", routeArgs(), "pc"));
    query.body.push_back(Op::call("TTTrainType", routeArgs(), "tt"));
    query.body.push_back(Op::callIf(fns::bucketGuard("route", 50),
                                    "TTFoodQuery", routeArgs(), "fq"));
    query.body.push_back(Op::compute(msToTicks(4.0)));
    query.output = [](const Env& e) {
        Value out = Value::object({});
        out["price"] = Value((e.var("pc").at("v").asInt() + 1) *
                             (e.var("tt").at("v").asInt() + 1) % 64);
        out["seats"] = e.var("sa").at("v");
        return out;
    };
    app.functions.push_back(std::move(query));

    {
        FunctionDef seat;
        seat.name = "TTSeatAvail";
        seat.body.push_back(Op::compute(msToTicks(8.0)));
        seat.body.push_back(Op::storageRead(
            fns::keyOf2("seat", "route", "date"), "s"));
        seat.output = [](const Env& e) {
            Value out = Value::object({});
            out["v"] = Value(e.var("s").at("v").asInt() % 16);
            return out;
        };
        app.functions.push_back(std::move(seat));
    }
    app.functions.push_back(leafService("TTPriceCalc", 9.0, "price", 24));
    app.functions.push_back(leafService("TTTrainType", 5.0, "", 4));
    app.functions.push_back(leafService("TTFoodQuery", 6.0, "", 6));
    app.functions.push_back(leafService("TTCheckUser", 7.0, "", 2));

    FunctionDef bill;
    bill.name = "TTCreateBill";
    bill.body.push_back(Op::compute(msToTicks(6.0)));
    // Reads the order record the root writes earlier in the same
    // invocation: a cross-function RAW over global storage. A
    // speculatively launched TTCreateBill reads it prematurely, gets
    // squashed by the Data Buffer, and the squash minimizer learns to
    // stall this read (§V-C).
    bill.body.push_back(
        Op::storageRead(fns::keyOf2("order", "route", "date"), "ord"));
    bill.body.push_back(Op::call("TTTaxSvc", routeArgs(), "tax"));
    bill.body.push_back(Op::call("TTAuditSvc", routeArgs(), "aud"));
    bill.body.push_back(Op::storageWrite(
        fns::keyOf2("bill", "route", "date"), [](const Env& e) {
            Value rec = Value::object({});
            rec["tax"] = e.var("tax").at("v");
            rec["price"] = e.var("ord").at("price");
            return rec;
        }));
    bill.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((intOr(e.var("tax").at("v"), 0) +
                          intOr(e.var("ord").at("price"), 0)) %
                         32);
        return out;
    };
    app.functions.push_back(std::move(bill));

    app.functions.push_back(leafService("TTTaxSvc", 7.0, "", 8));
    app.functions.push_back(leafService("TTAuditSvc", 5.0, "", 4));

    FunctionDef notify;
    notify.name = "TTNotify";
    notify.body.push_back(Op::compute(msToTicks(4.0)));
    notify.body.push_back(Op::http());
    notify.output = [](const Env&) {
        return Value::object({{"sent", Value(true)}});
    };
    app.functions.push_back(std::move(notify));

    app.inputGen = ticketGen(config);
    const auto routes = config.items;
    app.seedStore = [routes](KvStore& store, Rng& rng) {
        seedRouteRecords(store, rng, "station", routes, 12);
        seedRouteRecords(store, rng, "price", routes, 24);
        for (std::uint32_t r = 0; r < routes; ++r) {
            for (std::uint32_t d = 0; d < 14; ++d) {
                store.put(strFormat("seat:\"r%u\":\"d%u\"", r, d),
                          Value::object({{"v", Value(rng.uniformInt(
                                                    std::int64_t{0},
                                                    63))}}));
            }
        }
    };
    return app;
}

Application
makeTripInApp(const DatasetConfig& config)
{
    Application app;
    app.name = "TripInApp";
    app.suite = "TrainTicket";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "TIRoot";

    FunctionDef root;
    root.name = "TIRoot";
    root.body.push_back(Op::compute(msToTicks(5.0)));
    root.body.push_back(Op::call("TITrainQ", routeDateArgs(), "tq"));
    root.body.push_back(Op::call("TIStationQ", routeArgs(), "sq"));
    root.body.push_back(Op::call("TITimeQ", routeDateArgs(), "tmq"));
    root.body.push_back(Op::callIf(fns::bucketGuard("route", 50),
                                   "TIWeatherQ", routeDateArgs(), "wq"));
    root.body.push_back(Op::callIf(fns::bucketGuard("date", 40),
                                   "TIAlertQ", routeArgs(), "aq"));
    root.body.push_back(Op::compute(msToTicks(6.0)));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["train"] = e.var("tq").at("v");
        out["depart"] = e.var("tmq").at("v");
        return out;
    };
    app.functions.push_back(std::move(root));

    FunctionDef trainq;
    trainq.name = "TITrainQ";
    trainq.body.push_back(Op::compute(msToTicks(5.0)));
    trainq.body.push_back(Op::call("TIRouteSvc", routeArgs(), "rs"));
    trainq.body.push_back(Op::call("TISeatSvc", routeDateArgs(), "ss"));
    trainq.body.push_back(Op::call("TIPriceSvc", routeArgs(), "ps"));
    trainq.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("rs").at("v").asInt() +
                          e.var("ss").at("v").asInt() +
                          e.var("ps").at("v").asInt()) %
                         32);
        return out;
    };
    app.functions.push_back(std::move(trainq));

    app.functions.push_back(leafService("TIRouteSvc", 8.0, "station", 12));
    app.functions.push_back(leafService("TISeatSvc", 7.0, "", 16));
    app.functions.push_back(leafService("TIPriceSvc", 9.0, "price", 24));
    app.functions.push_back(leafService("TIStationQ", 6.0, "station", 12));

    FunctionDef timeq;
    timeq.name = "TITimeQ";
    timeq.body.push_back(Op::compute(msToTicks(6.0)));
    timeq.body.push_back(Op::call("TISchedSvc", routeDateArgs(), "sc"));
    timeq.body.push_back(Op::call("TIDelaySvc", routeDateArgs(), "dl"));
    timeq.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("sc").at("v").asInt() +
                          e.var("dl").at("v").asInt()) %
                         24);
        return out;
    };
    app.functions.push_back(std::move(timeq));

    app.functions.push_back(leafService("TISchedSvc", 8.0, "", 24));
    app.functions.push_back(leafService("TIDelaySvc", 6.0, "", 6));
    app.functions.push_back(leafService("TIWeatherQ", 7.0, "", 5));
    app.functions.push_back(leafService("TIAlertQ", 5.0, "", 3));

    app.inputGen = ticketGen(config);
    const auto routes = config.items;
    app.seedStore = [routes](KvStore& store, Rng& rng) {
        seedRouteRecords(store, rng, "station", routes, 12);
        seedRouteRecords(store, rng, "price", routes, 24);
    };
    return app;
}

Application
makeQueryTrvlApp(const DatasetConfig& config)
{
    Application app;
    app.name = "QueryTrvl";
    app.suite = "TrainTicket";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "QTRoot";

    FunctionDef root;
    root.name = "QTRoot";
    root.body.push_back(Op::compute(msToTicks(6.0)));
    root.body.push_back(Op::call("QTDirect", routeDateArgs(), "d"));
    root.body.push_back(Op::call("QTTransfer", routeDateArgs(), "t"));
    root.body.push_back(Op::callIf(fns::bucketGuard("date", 40),
                                   "QTPromo", routeArgs(), "p"));
    root.body.push_back(Op::callIf(fns::bucketGuard("route", 50),
                                   "QTInsure", routeArgs(), "ins"));
    root.body.push_back(Op::compute(msToTicks(5.0)));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["direct"] = e.var("d").at("v");
        out["transfer"] = e.var("t").at("v");
        return out;
    };
    app.functions.push_back(std::move(root));

    FunctionDef direct;
    direct.name = "QTDirect";
    direct.body.push_back(Op::compute(msToTicks(5.0)));
    direct.body.push_back(Op::call("QTSched", routeDateArgs(), "s"));
    direct.body.push_back(Op::call("QTFare", routeArgs(), "f"));
    direct.body.push_back(Op::call("QTStops", routeArgs(), "st"));
    direct.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("s").at("v").asInt() * 3 +
                          e.var("f").at("v").asInt()) %
                         48);
        return out;
    };
    app.functions.push_back(std::move(direct));

    FunctionDef transfer;
    transfer.name = "QTTransfer";
    transfer.body.push_back(Op::compute(msToTicks(6.0)));
    transfer.body.push_back(Op::call("QTSched", routeDateArgs(), "s1"));
    transfer.body.push_back(Op::call("QTHub", routeArgs(), "h"));
    transfer.body.push_back(Op::call("QTFeeSvc", routeArgs(), "fee"));
    transfer.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("s1").at("v").asInt() +
                          e.var("h").at("v").asInt()) %
                         48);
        return out;
    };
    app.functions.push_back(std::move(transfer));

    app.functions.push_back(leafService("QTSched", 8.0, "", 24));
    app.functions.push_back(leafService("QTFare", 7.0, "price", 24));
    app.functions.push_back(leafService("QTStops", 5.0, "station", 8));
    app.functions.push_back(leafService("QTHub", 6.0, "station", 12));
    app.functions.push_back(leafService("QTFeeSvc", 5.0, "", 10));
    app.functions.push_back(leafService("QTPromo", 5.0, "", 4));
    app.functions.push_back(leafService("QTInsure", 6.0, "", 5));

    app.inputGen = ticketGen(config);
    const auto routes = config.items;
    app.seedStore = [routes](KvStore& store, Rng& rng) {
        seedRouteRecords(store, rng, "station", routes, 12);
        seedRouteRecords(store, rng, "price", routes, 24);
    };
    return app;
}

Application
makeGetLeftApp(const DatasetConfig& config)
{
    Application app;
    app.name = "GetLeftApp";
    app.suite = "TrainTicket";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "GLRoot";

    FunctionDef root;
    root.name = "GLRoot";
    root.body.push_back(Op::compute(msToTicks(5.0)));
    root.body.push_back(Op::call("GLOrderQ", routeDateArgs(), "o"));
    root.body.push_back(Op::call("GLSeatLeft", routeDateArgs(), "s"));
    root.body.push_back(Op::call("GLPriceQ", routeArgs(), "p"));
    root.body.push_back(Op::callIf(fns::bucketGuard("route", 50),
                                   "GLNotify", routeArgs(), "n"));
    root.body.push_back(Op::compute(msToTicks(4.0)));
    root.body.push_back(Op::storageWrite(
        fns::keyOf2("leftcache", "route", "date"), [](const Env& e) {
            Value rec = Value::object({});
            rec["left"] = e.var("s").at("v");
            return rec;
        }));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["left"] = e.var("s").at("v");
        out["orders"] = e.var("o").at("v");
        return out;
    };
    app.functions.push_back(std::move(root));

    FunctionDef orderq;
    orderq.name = "GLOrderQ";
    orderq.body.push_back(Op::compute(msToTicks(7.0)));
    orderq.body.push_back(Op::call("GLCountSvc", routeDateArgs(), "c"));
    orderq.body.push_back(Op::call("GLUserSvc", routeArgs(), "u"));
    orderq.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("c").at("v").asInt() +
                          e.var("u").at("v").asInt()) %
                         16);
        return out;
    };
    app.functions.push_back(std::move(orderq));

    FunctionDef seatleft;
    seatleft.name = "GLSeatLeft";
    seatleft.body.push_back(Op::compute(msToTicks(6.0)));
    seatleft.body.push_back(Op::call("GLConfigSvc", routeArgs(), "cfg"));
    seatleft.body.push_back(Op::call("GLCountSvc", routeDateArgs(), "c"));
    seatleft.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("cfg").at("v").asInt() * 4 -
                          e.var("c").at("v").asInt() + 64) %
                         64);
        return out;
    };
    app.functions.push_back(std::move(seatleft));

    app.functions.push_back(leafService("GLCountSvc", 8.0, "", 16));
    app.functions.push_back(leafService("GLConfigSvc", 6.0, "station", 12));
    app.functions.push_back(leafService("GLUserSvc", 5.0, "", 12));
    app.functions.push_back(leafService("GLPriceQ", 6.0, "price", 24));

    FunctionDef gl_notify;
    gl_notify.name = "GLNotify";
    gl_notify.body.push_back(Op::compute(msToTicks(4.0)));
    gl_notify.body.push_back(Op::http());
    gl_notify.output = [](const Env&) {
        return Value::object({{"sent", Value(true)}});
    };
    app.functions.push_back(std::move(gl_notify));

    app.inputGen = ticketGen(config);
    const auto routes = config.items;
    app.seedStore = [routes](KvStore& store, Rng& rng) {
        seedRouteRecords(store, rng, "station", routes, 12);
        seedRouteRecords(store, rng, "price", routes, 24);
    };
    return app;
}

Application
makeCancelApp(const DatasetConfig& config)
{
    Application app;
    app.name = "CancelApp";
    app.suite = "TrainTicket";
    app.type = WorkflowType::Implicit;
    app.rootFunction = "CaRoot";

    FunctionDef root;
    root.name = "CaRoot";
    root.body.push_back(Op::compute(msToTicks(6.0)));
    root.body.push_back(Op::call("CaOrderQ", routeDateArgs(), "o"));
    root.body.push_back(Op::call("CaRefund", routeDateArgs(), "r"));
    root.body.push_back(Op::callIf(fns::bucketGuard("route", 50),
                                   "CaNotify", routeArgs(), "n"));
    root.body.push_back(Op::callIf(fns::bucketGuard("date", 40),
                                   "CaInsQ", routeArgs(), "iq"));
    root.body.push_back(Op::compute(msToTicks(5.0)));
    root.body.push_back(Op::storageWrite(
        fns::keyOf2("cancel", "route", "date"), [](const Env& e) {
            Value rec = Value::object({});
            rec["refund"] = e.var("r").at("v");
            return rec;
        }));
    root.output = [](const Env& e) {
        Value out = Value::object({});
        out["ok"] = Value(true);
        out["refund"] = e.var("r").at("v");
        return out;
    };
    app.functions.push_back(std::move(root));

    FunctionDef orderq;
    orderq.name = "CaOrderQ";
    orderq.body.push_back(Op::compute(msToTicks(7.0)));
    orderq.body.push_back(Op::call("CaStatusSvc", routeDateArgs(), "st"));
    orderq.body.push_back(Op::call("CaUserSvc", routeArgs(), "u"));
    orderq.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("st").at("v").asInt() +
                          e.var("u").at("v").asInt()) %
                         16);
        return out;
    };
    app.functions.push_back(std::move(orderq));

    FunctionDef refund;
    refund.name = "CaRefund";
    refund.body.push_back(Op::compute(msToTicks(8.0)));
    refund.body.push_back(Op::call("CaFeeSvc", routeArgs(), "fee"));
    refund.body.push_back(Op::call("CaPaySvc", routeDateArgs(), "pay"));
    refund.body.push_back(Op::call("CaLedgerSvc", routeArgs(), "led"));
    refund.output = [](const Env& e) {
        Value out = Value::object({});
        out["v"] = Value((e.var("pay").at("v").asInt() -
                          e.var("fee").at("v").asInt() + 32) %
                         32);
        return out;
    };
    app.functions.push_back(std::move(refund));

    app.functions.push_back(leafService("CaStatusSvc", 6.0, "", 8));
    app.functions.push_back(leafService("CaUserSvc", 7.0, "", 12));
    app.functions.push_back(leafService("CaFeeSvc", 5.0, "price", 24));
    app.functions.push_back(leafService("CaPaySvc", 9.0, "", 16));
    app.functions.push_back(leafService("CaLedgerSvc", 6.0, "", 8));
    app.functions.push_back(leafService("CaInsQ", 5.0, "", 4));

    FunctionDef notify;
    notify.name = "CaNotify";
    notify.body.push_back(Op::compute(msToTicks(4.0)));
    notify.body.push_back(Op::http());
    notify.output = [](const Env&) {
        return Value::object({{"sent", Value(true)}});
    };
    app.functions.push_back(std::move(notify));

    app.inputGen = ticketGen(config);
    const auto routes = config.items;
    app.seedStore = [routes](KvStore& store, Rng& rng) {
        seedRouteRecords(store, rng, "price", routes, 24);
    };
    return app;
}

std::vector<Application>
trainTicketSuite(const DatasetConfig& config)
{
    std::vector<Application> suite;
    suite.push_back(makeTcktApp(config));
    suite.push_back(makeTripInApp(config));
    suite.push_back(makeQueryTrvlApp(config));
    suite.push_back(makeGetLeftApp(config));
    suite.push_back(makeCancelApp(config));
    return suite;
}

} // namespace specfaas
