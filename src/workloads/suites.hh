/**
 * @file
 * Convenience assembly of the three application suites (§VII).
 */

#ifndef SPECFAAS_WORKLOADS_SUITES_HH
#define SPECFAAS_WORKLOADS_SUITES_HH

#include <memory>

#include "workflow/registry.hh"
#include "workloads/alibaba.hh"
#include "workloads/datasets.hh"
#include "workloads/faaschain.hh"
#include "workloads/trainticket.hh"

namespace specfaas {

/** Options selecting and parameterizing the suites. */
struct SuiteOptions
{
    /** FaaSChain dataset (branchBias drives the Fig. 14 sweep). */
    DatasetConfig faasChain{/*users=*/64, /*items=*/300,
                            /*zipfS=*/1.4, /*branchBias=*/0.90,
                            /*branchFields=*/4};
    /** TrainTicket dataset. */
    DatasetConfig trainTicket;
    /** Alibaba trace generator parameters. */
    AlibabaTraceConfig alibaba;

    SuiteOptions();
};

/** Build a registry holding all sixteen applications. */
std::unique_ptr<ApplicationRegistry>
makeAllSuites(const SuiteOptions& options = SuiteOptions());

} // namespace specfaas

#endif // SPECFAAS_WORKLOADS_SUITES_HH
