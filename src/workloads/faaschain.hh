/**
 * @file
 * The FaaSChain suite: six explicit-workflow applications rebuilt
 * from the paper's Table I/II characterization (avg 7.8 functions,
 * 2.5 cross-function branches, 2.7 data dependences, max DAG depth
 * 10, ~160 ms warm execution). Three of the applications (Login,
 * Banking, FlightBook) have no cross-function data dependences —
 * pure branch chains — matching the Fig. 12 breakdown note; the
 * other three (HotelBook, OnlPurch, SmartHome) mix sequences,
 * branches and producer→consumer storage communication.
 */

#ifndef SPECFAAS_WORKLOADS_FAASCHAIN_HH
#define SPECFAAS_WORKLOADS_FAASCHAIN_HH

#include <vector>

#include "workflow/workflow.hh"
#include "workloads/datasets.hh"

namespace specfaas {

/** @{ Individual FaaSChain applications. */
Application makeLoginApp(const DatasetConfig& config);
Application makeBankingApp(const DatasetConfig& config);
Application makeFlightBookApp(const DatasetConfig& config);
Application makeHotelBookApp(const DatasetConfig& config);
Application makeOnlPurchApp(const DatasetConfig& config);
Application makeSmartHomeApp(const DatasetConfig& config);
/** @} */

/** All six applications, in Table II order. */
std::vector<Application> faasChainSuite(const DatasetConfig& config);

} // namespace specfaas

#endif // SPECFAAS_WORKLOADS_FAASCHAIN_HH
