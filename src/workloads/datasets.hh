/**
 * @file
 * Synthetic input datasets for the application suites.
 *
 * The paper drives FaaSChain with public web datasets, TrainTicket
 * with a 3M-record airline-ticket dataset (BTS 2021), and uses
 * synthetic Bernoulli outcomes for branches whose inputs the datasets
 * cannot determine (§VII). None of those datasets ship here, so these
 * generators reproduce the properties that matter to SpecFaaS:
 *
 *  - skewed request popularity (Zipf) so memoization tables of
 *    bounded size reach the hit rates the paper reports;
 *  - configurable branch bias so the branch-predictor hit rate can
 *    be swept (Fig. 14 uses 100/90/70/50%);
 *  - low-cardinality derived fields so downstream functions see
 *    repeating inputs, as real ticket/route data does.
 */

#ifndef SPECFAAS_WORKLOADS_DATASETS_HH
#define SPECFAAS_WORKLOADS_DATASETS_HH

#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/value.hh"

namespace specfaas {

/** Parameters of a request-input generator. */
struct DatasetConfig
{
    /** Number of distinct users. */
    std::uint32_t users = 64;

    /** Number of distinct routes/items (Zipf universe). */
    std::uint32_t items = 300;

    /** Zipf exponent of item popularity. */
    double zipfS = 1.4;

    /**
     * Probability that a branch condition takes its dominant
     * direction (§VII: 90% assumed for FaaSChain; Observation 2
     * measures 90% Alibaba / 98% TrainTicket path determinism).
     */
    double branchBias = 0.90;

    /** Number of independent branch fields to embed per request. */
    std::uint32_t branchFields = 4;
};

/**
 * Draw one request payload:
 * {user, item, qty, b0..bN (branch outcome booleans)}.
 */
Value drawRequest(Rng& rng, const DatasetConfig& config);

/**
 * Draw one airline/train ticket request:
 * {user, route, date, cls, b0..bN}.
 */
Value drawTicketRequest(Rng& rng, const DatasetConfig& config);

/** Stable low-cardinality bucket of a string (for derived fields). */
std::int64_t bucketOf(const std::string& s, std::int64_t buckets);

} // namespace specfaas

#endif // SPECFAAS_WORKLOADS_DATASETS_HH
