file(REMOVE_RECURSE
  "CMakeFiles/ticket_booking.dir/ticket_booking.cpp.o"
  "CMakeFiles/ticket_booking.dir/ticket_booking.cpp.o.d"
  "ticket_booking"
  "ticket_booking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_booking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
