# Empty compiler generated dependencies file for ticket_booking.
# This may be replaced when dependencies are built.
