file(REMOVE_RECURSE
  "CMakeFiles/tuning_speculation.dir/tuning_speculation.cpp.o"
  "CMakeFiles/tuning_speculation.dir/tuning_speculation.cpp.o.d"
  "tuning_speculation"
  "tuning_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuning_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
