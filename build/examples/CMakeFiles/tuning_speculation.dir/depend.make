# Empty dependencies file for tuning_speculation.
# This may be replaced when dependencies are built.
