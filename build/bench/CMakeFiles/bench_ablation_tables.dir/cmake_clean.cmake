file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tables.dir/bench_ablation_tables.cc.o"
  "CMakeFiles/bench_ablation_tables.dir/bench_ablation_tables.cc.o.d"
  "bench_ablation_tables"
  "bench_ablation_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
