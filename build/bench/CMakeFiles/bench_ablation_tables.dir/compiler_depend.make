# Empty compiler generated dependencies file for bench_ablation_tables.
# This may be replaced when dependencies are built.
