file(REMOVE_RECURSE
  "CMakeFiles/bench_obs35_sideeffects.dir/bench_obs35_sideeffects.cc.o"
  "CMakeFiles/bench_obs35_sideeffects.dir/bench_obs35_sideeffects.cc.o.d"
  "bench_obs35_sideeffects"
  "bench_obs35_sideeffects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs35_sideeffects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
