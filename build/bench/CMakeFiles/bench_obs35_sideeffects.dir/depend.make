# Empty dependencies file for bench_obs35_sideeffects.
# This may be replaced when dependencies are built.
