# Empty compiler generated dependencies file for bench_fig4_cpu_util.
# This may be replaced when dependencies are built.
