# Empty dependencies file for bench_table1_characterization.
# This may be replaced when dependencies are built.
