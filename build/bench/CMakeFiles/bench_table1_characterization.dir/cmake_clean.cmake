file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_characterization.dir/bench_table1_characterization.cc.o"
  "CMakeFiles/bench_table1_characterization.dir/bench_table1_characterization.cc.o.d"
  "bench_table1_characterization"
  "bench_table1_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
