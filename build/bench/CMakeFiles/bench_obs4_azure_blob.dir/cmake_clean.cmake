file(REMOVE_RECURSE
  "CMakeFiles/bench_obs4_azure_blob.dir/bench_obs4_azure_blob.cc.o"
  "CMakeFiles/bench_obs4_azure_blob.dir/bench_obs4_azure_blob.cc.o.d"
  "bench_obs4_azure_blob"
  "bench_obs4_azure_blob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs4_azure_blob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
