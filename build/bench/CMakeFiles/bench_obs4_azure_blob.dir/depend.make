# Empty dependencies file for bench_obs4_azure_blob.
# This may be replaced when dependencies are built.
