file(REMOVE_RECURSE
  "CMakeFiles/bench_obs2_determinism.dir/bench_obs2_determinism.cc.o"
  "CMakeFiles/bench_obs2_determinism.dir/bench_obs2_determinism.cc.o.d"
  "bench_obs2_determinism"
  "bench_obs2_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs2_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
