# Empty compiler generated dependencies file for bench_obs2_determinism.
# This may be replaced when dependencies are built.
