# Empty compiler generated dependencies file for bench_fig14_bp_sweep.
# This may be replaced when dependencies are built.
