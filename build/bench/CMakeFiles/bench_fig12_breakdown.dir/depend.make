# Empty dependencies file for bench_fig12_breakdown.
# This may be replaced when dependencies are built.
