
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_throughput.cc" "bench/CMakeFiles/bench_table3_throughput.dir/bench_table3_throughput.cc.o" "gcc" "bench/CMakeFiles/bench_table3_throughput.dir/bench_table3_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/specfaas_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/specfaas_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/specfaas_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/specfaas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/specfaas/CMakeFiles/specfaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/specfaas_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/specfaas_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/specfaas_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/specfaas_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/specfaas_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
