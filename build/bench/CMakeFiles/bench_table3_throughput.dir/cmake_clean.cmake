file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_throughput.dir/bench_table3_throughput.cc.o"
  "CMakeFiles/bench_table3_throughput.dir/bench_table3_throughput.cc.o.d"
  "bench_table3_throughput"
  "bench_table3_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
