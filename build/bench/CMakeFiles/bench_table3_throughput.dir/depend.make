# Empty dependencies file for bench_table3_throughput.
# This may be replaced when dependencies are built.
