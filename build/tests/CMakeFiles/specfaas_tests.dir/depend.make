# Empty dependencies file for specfaas_tests.
# This may be replaced when dependencies are built.
