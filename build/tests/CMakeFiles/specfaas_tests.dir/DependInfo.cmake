
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cc" "tests/CMakeFiles/specfaas_tests.dir/test_baseline.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_baseline.cc.o.d"
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/specfaas_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_cluster.cc" "tests/CMakeFiles/specfaas_tests.dir/test_cluster.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_cluster.cc.o.d"
  "/root/repo/tests/test_data_buffer.cc" "tests/CMakeFiles/specfaas_tests.dir/test_data_buffer.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_data_buffer.cc.o.d"
  "/root/repo/tests/test_end_to_end.cc" "tests/CMakeFiles/specfaas_tests.dir/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_end_to_end.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/specfaas_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_fuzz_equivalence.cc" "tests/CMakeFiles/specfaas_tests.dir/test_fuzz_equivalence.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_fuzz_equivalence.cc.o.d"
  "/root/repo/tests/test_interpreter.cc" "tests/CMakeFiles/specfaas_tests.dir/test_interpreter.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_interpreter.cc.o.d"
  "/root/repo/tests/test_loops.cc" "tests/CMakeFiles/specfaas_tests.dir/test_loops.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_loops.cc.o.d"
  "/root/repo/tests/test_memo_table.cc" "tests/CMakeFiles/specfaas_tests.dir/test_memo_table.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_memo_table.cc.o.d"
  "/root/repo/tests/test_platform.cc" "tests/CMakeFiles/specfaas_tests.dir/test_platform.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_platform.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/specfaas_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_spec_controller.cc" "tests/CMakeFiles/specfaas_tests.dir/test_spec_controller.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_spec_controller.cc.o.d"
  "/root/repo/tests/test_squash_minimizer.cc" "tests/CMakeFiles/specfaas_tests.dir/test_squash_minimizer.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_squash_minimizer.cc.o.d"
  "/root/repo/tests/test_stats_util.cc" "tests/CMakeFiles/specfaas_tests.dir/test_stats_util.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_stats_util.cc.o.d"
  "/root/repo/tests/test_storage.cc" "tests/CMakeFiles/specfaas_tests.dir/test_storage.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_storage.cc.o.d"
  "/root/repo/tests/test_traces.cc" "tests/CMakeFiles/specfaas_tests.dir/test_traces.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_traces.cc.o.d"
  "/root/repo/tests/test_value.cc" "tests/CMakeFiles/specfaas_tests.dir/test_value.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_value.cc.o.d"
  "/root/repo/tests/test_workflow.cc" "tests/CMakeFiles/specfaas_tests.dir/test_workflow.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_workflow.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/specfaas_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/specfaas_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/specfaas_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/specfaas_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/specfaas_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/specfaas_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/specfaas/CMakeFiles/specfaas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/specfaas_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/specfaas_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/specfaas_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/specfaas_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/specfaas_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
