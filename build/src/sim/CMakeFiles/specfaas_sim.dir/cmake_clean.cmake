file(REMOVE_RECURSE
  "CMakeFiles/specfaas_sim.dir/event_queue.cc.o"
  "CMakeFiles/specfaas_sim.dir/event_queue.cc.o.d"
  "libspecfaas_sim.a"
  "libspecfaas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
