# Empty dependencies file for specfaas_sim.
# This may be replaced when dependencies are built.
