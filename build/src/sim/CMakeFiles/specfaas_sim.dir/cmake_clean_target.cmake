file(REMOVE_RECURSE
  "libspecfaas_sim.a"
)
