# Empty compiler generated dependencies file for specfaas_platform.
# This may be replaced when dependencies are built.
