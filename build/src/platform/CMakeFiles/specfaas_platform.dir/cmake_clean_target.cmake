file(REMOVE_RECURSE
  "libspecfaas_platform.a"
)
