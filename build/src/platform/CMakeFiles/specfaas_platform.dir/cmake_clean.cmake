file(REMOVE_RECURSE
  "CMakeFiles/specfaas_platform.dir/experiment.cc.o"
  "CMakeFiles/specfaas_platform.dir/experiment.cc.o.d"
  "CMakeFiles/specfaas_platform.dir/load_generator.cc.o"
  "CMakeFiles/specfaas_platform.dir/load_generator.cc.o.d"
  "CMakeFiles/specfaas_platform.dir/platform.cc.o"
  "CMakeFiles/specfaas_platform.dir/platform.cc.o.d"
  "libspecfaas_platform.a"
  "libspecfaas_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
