file(REMOVE_RECURSE
  "CMakeFiles/specfaas_runtime.dir/instance.cc.o"
  "CMakeFiles/specfaas_runtime.dir/instance.cc.o.d"
  "CMakeFiles/specfaas_runtime.dir/interpreter.cc.o"
  "CMakeFiles/specfaas_runtime.dir/interpreter.cc.o.d"
  "CMakeFiles/specfaas_runtime.dir/launcher.cc.o"
  "CMakeFiles/specfaas_runtime.dir/launcher.cc.o.d"
  "libspecfaas_runtime.a"
  "libspecfaas_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
