file(REMOVE_RECURSE
  "libspecfaas_runtime.a"
)
