# Empty compiler generated dependencies file for specfaas_runtime.
# This may be replaced when dependencies are built.
