file(REMOVE_RECURSE
  "libspecfaas_common.a"
)
