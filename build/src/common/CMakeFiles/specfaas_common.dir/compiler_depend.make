# Empty compiler generated dependencies file for specfaas_common.
# This may be replaced when dependencies are built.
