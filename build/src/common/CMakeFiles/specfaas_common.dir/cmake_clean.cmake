file(REMOVE_RECURSE
  "CMakeFiles/specfaas_common.dir/logging.cc.o"
  "CMakeFiles/specfaas_common.dir/logging.cc.o.d"
  "CMakeFiles/specfaas_common.dir/rng.cc.o"
  "CMakeFiles/specfaas_common.dir/rng.cc.o.d"
  "CMakeFiles/specfaas_common.dir/stats_util.cc.o"
  "CMakeFiles/specfaas_common.dir/stats_util.cc.o.d"
  "CMakeFiles/specfaas_common.dir/table.cc.o"
  "CMakeFiles/specfaas_common.dir/table.cc.o.d"
  "CMakeFiles/specfaas_common.dir/value.cc.o"
  "CMakeFiles/specfaas_common.dir/value.cc.o.d"
  "libspecfaas_common.a"
  "libspecfaas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
