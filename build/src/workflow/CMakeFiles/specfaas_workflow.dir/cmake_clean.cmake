file(REMOVE_RECURSE
  "CMakeFiles/specfaas_workflow.dir/flow_program.cc.o"
  "CMakeFiles/specfaas_workflow.dir/flow_program.cc.o.d"
  "CMakeFiles/specfaas_workflow.dir/function_def.cc.o"
  "CMakeFiles/specfaas_workflow.dir/function_def.cc.o.d"
  "CMakeFiles/specfaas_workflow.dir/registry.cc.o"
  "CMakeFiles/specfaas_workflow.dir/registry.cc.o.d"
  "CMakeFiles/specfaas_workflow.dir/workflow.cc.o"
  "CMakeFiles/specfaas_workflow.dir/workflow.cc.o.d"
  "libspecfaas_workflow.a"
  "libspecfaas_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
