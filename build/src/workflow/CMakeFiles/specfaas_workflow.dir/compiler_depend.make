# Empty compiler generated dependencies file for specfaas_workflow.
# This may be replaced when dependencies are built.
