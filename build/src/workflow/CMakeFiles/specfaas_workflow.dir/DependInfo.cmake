
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/flow_program.cc" "src/workflow/CMakeFiles/specfaas_workflow.dir/flow_program.cc.o" "gcc" "src/workflow/CMakeFiles/specfaas_workflow.dir/flow_program.cc.o.d"
  "/root/repo/src/workflow/function_def.cc" "src/workflow/CMakeFiles/specfaas_workflow.dir/function_def.cc.o" "gcc" "src/workflow/CMakeFiles/specfaas_workflow.dir/function_def.cc.o.d"
  "/root/repo/src/workflow/registry.cc" "src/workflow/CMakeFiles/specfaas_workflow.dir/registry.cc.o" "gcc" "src/workflow/CMakeFiles/specfaas_workflow.dir/registry.cc.o.d"
  "/root/repo/src/workflow/workflow.cc" "src/workflow/CMakeFiles/specfaas_workflow.dir/workflow.cc.o" "gcc" "src/workflow/CMakeFiles/specfaas_workflow.dir/workflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/specfaas_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
