file(REMOVE_RECURSE
  "libspecfaas_workflow.a"
)
