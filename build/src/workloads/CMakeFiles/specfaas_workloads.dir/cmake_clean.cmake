file(REMOVE_RECURSE
  "CMakeFiles/specfaas_workloads.dir/alibaba.cc.o"
  "CMakeFiles/specfaas_workloads.dir/alibaba.cc.o.d"
  "CMakeFiles/specfaas_workloads.dir/app_helpers.cc.o"
  "CMakeFiles/specfaas_workloads.dir/app_helpers.cc.o.d"
  "CMakeFiles/specfaas_workloads.dir/datasets.cc.o"
  "CMakeFiles/specfaas_workloads.dir/datasets.cc.o.d"
  "CMakeFiles/specfaas_workloads.dir/faaschain.cc.o"
  "CMakeFiles/specfaas_workloads.dir/faaschain.cc.o.d"
  "CMakeFiles/specfaas_workloads.dir/suites.cc.o"
  "CMakeFiles/specfaas_workloads.dir/suites.cc.o.d"
  "CMakeFiles/specfaas_workloads.dir/trainticket.cc.o"
  "CMakeFiles/specfaas_workloads.dir/trainticket.cc.o.d"
  "libspecfaas_workloads.a"
  "libspecfaas_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
