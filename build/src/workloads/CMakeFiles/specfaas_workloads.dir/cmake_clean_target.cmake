file(REMOVE_RECURSE
  "libspecfaas_workloads.a"
)
