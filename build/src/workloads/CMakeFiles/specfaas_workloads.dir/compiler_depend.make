# Empty compiler generated dependencies file for specfaas_workloads.
# This may be replaced when dependencies are built.
