file(REMOVE_RECURSE
  "libspecfaas_traces.a"
)
