file(REMOVE_RECURSE
  "CMakeFiles/specfaas_traces.dir/azure_blob.cc.o"
  "CMakeFiles/specfaas_traces.dir/azure_blob.cc.o.d"
  "CMakeFiles/specfaas_traces.dir/cpu_utilization.cc.o"
  "CMakeFiles/specfaas_traces.dir/cpu_utilization.cc.o.d"
  "CMakeFiles/specfaas_traces.dir/determinism.cc.o"
  "CMakeFiles/specfaas_traces.dir/determinism.cc.o.d"
  "libspecfaas_traces.a"
  "libspecfaas_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
