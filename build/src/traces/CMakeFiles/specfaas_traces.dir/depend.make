# Empty dependencies file for specfaas_traces.
# This may be replaced when dependencies are built.
