
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traces/azure_blob.cc" "src/traces/CMakeFiles/specfaas_traces.dir/azure_blob.cc.o" "gcc" "src/traces/CMakeFiles/specfaas_traces.dir/azure_blob.cc.o.d"
  "/root/repo/src/traces/cpu_utilization.cc" "src/traces/CMakeFiles/specfaas_traces.dir/cpu_utilization.cc.o" "gcc" "src/traces/CMakeFiles/specfaas_traces.dir/cpu_utilization.cc.o.d"
  "/root/repo/src/traces/determinism.cc" "src/traces/CMakeFiles/specfaas_traces.dir/determinism.cc.o" "gcc" "src/traces/CMakeFiles/specfaas_traces.dir/determinism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/specfaas_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/specfaas_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/specfaas_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/specfaas_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
