
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/cluster/CMakeFiles/specfaas_cluster.dir/cluster.cc.o" "gcc" "src/cluster/CMakeFiles/specfaas_cluster.dir/cluster.cc.o.d"
  "/root/repo/src/cluster/container.cc" "src/cluster/CMakeFiles/specfaas_cluster.dir/container.cc.o" "gcc" "src/cluster/CMakeFiles/specfaas_cluster.dir/container.cc.o.d"
  "/root/repo/src/cluster/node.cc" "src/cluster/CMakeFiles/specfaas_cluster.dir/node.cc.o" "gcc" "src/cluster/CMakeFiles/specfaas_cluster.dir/node.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
