file(REMOVE_RECURSE
  "CMakeFiles/specfaas_cluster.dir/cluster.cc.o"
  "CMakeFiles/specfaas_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/specfaas_cluster.dir/container.cc.o"
  "CMakeFiles/specfaas_cluster.dir/container.cc.o.d"
  "CMakeFiles/specfaas_cluster.dir/node.cc.o"
  "CMakeFiles/specfaas_cluster.dir/node.cc.o.d"
  "libspecfaas_cluster.a"
  "libspecfaas_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
