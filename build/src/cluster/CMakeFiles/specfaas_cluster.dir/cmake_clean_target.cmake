file(REMOVE_RECURSE
  "libspecfaas_cluster.a"
)
