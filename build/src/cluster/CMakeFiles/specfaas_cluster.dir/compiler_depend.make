# Empty compiler generated dependencies file for specfaas_cluster.
# This may be replaced when dependencies are built.
