# Empty dependencies file for specfaas_metrics.
# This may be replaced when dependencies are built.
