file(REMOVE_RECURSE
  "libspecfaas_metrics.a"
)
