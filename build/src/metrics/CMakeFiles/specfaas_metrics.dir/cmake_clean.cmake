file(REMOVE_RECURSE
  "CMakeFiles/specfaas_metrics.dir/summary.cc.o"
  "CMakeFiles/specfaas_metrics.dir/summary.cc.o.d"
  "libspecfaas_metrics.a"
  "libspecfaas_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
