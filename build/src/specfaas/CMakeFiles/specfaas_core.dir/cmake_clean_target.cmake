file(REMOVE_RECURSE
  "libspecfaas_core.a"
)
