file(REMOVE_RECURSE
  "CMakeFiles/specfaas_core.dir/branch_predictor.cc.o"
  "CMakeFiles/specfaas_core.dir/branch_predictor.cc.o.d"
  "CMakeFiles/specfaas_core.dir/data_buffer.cc.o"
  "CMakeFiles/specfaas_core.dir/data_buffer.cc.o.d"
  "CMakeFiles/specfaas_core.dir/memo_table.cc.o"
  "CMakeFiles/specfaas_core.dir/memo_table.cc.o.d"
  "CMakeFiles/specfaas_core.dir/spec_controller.cc.o"
  "CMakeFiles/specfaas_core.dir/spec_controller.cc.o.d"
  "CMakeFiles/specfaas_core.dir/squash_minimizer.cc.o"
  "CMakeFiles/specfaas_core.dir/squash_minimizer.cc.o.d"
  "libspecfaas_core.a"
  "libspecfaas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
