
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/specfaas/branch_predictor.cc" "src/specfaas/CMakeFiles/specfaas_core.dir/branch_predictor.cc.o" "gcc" "src/specfaas/CMakeFiles/specfaas_core.dir/branch_predictor.cc.o.d"
  "/root/repo/src/specfaas/data_buffer.cc" "src/specfaas/CMakeFiles/specfaas_core.dir/data_buffer.cc.o" "gcc" "src/specfaas/CMakeFiles/specfaas_core.dir/data_buffer.cc.o.d"
  "/root/repo/src/specfaas/memo_table.cc" "src/specfaas/CMakeFiles/specfaas_core.dir/memo_table.cc.o" "gcc" "src/specfaas/CMakeFiles/specfaas_core.dir/memo_table.cc.o.d"
  "/root/repo/src/specfaas/spec_controller.cc" "src/specfaas/CMakeFiles/specfaas_core.dir/spec_controller.cc.o" "gcc" "src/specfaas/CMakeFiles/specfaas_core.dir/spec_controller.cc.o.d"
  "/root/repo/src/specfaas/squash_minimizer.cc" "src/specfaas/CMakeFiles/specfaas_core.dir/squash_minimizer.cc.o" "gcc" "src/specfaas/CMakeFiles/specfaas_core.dir/squash_minimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/specfaas_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/specfaas_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/specfaas_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/specfaas_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
