# Empty compiler generated dependencies file for specfaas_core.
# This may be replaced when dependencies are built.
