# Empty compiler generated dependencies file for specfaas_storage.
# This may be replaced when dependencies are built.
