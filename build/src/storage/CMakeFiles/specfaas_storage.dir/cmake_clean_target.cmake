file(REMOVE_RECURSE
  "libspecfaas_storage.a"
)
