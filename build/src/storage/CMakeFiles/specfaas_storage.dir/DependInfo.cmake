
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/kv_store.cc" "src/storage/CMakeFiles/specfaas_storage.dir/kv_store.cc.o" "gcc" "src/storage/CMakeFiles/specfaas_storage.dir/kv_store.cc.o.d"
  "/root/repo/src/storage/local_cache.cc" "src/storage/CMakeFiles/specfaas_storage.dir/local_cache.cc.o" "gcc" "src/storage/CMakeFiles/specfaas_storage.dir/local_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/specfaas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/specfaas_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
