file(REMOVE_RECURSE
  "CMakeFiles/specfaas_storage.dir/kv_store.cc.o"
  "CMakeFiles/specfaas_storage.dir/kv_store.cc.o.d"
  "CMakeFiles/specfaas_storage.dir/local_cache.cc.o"
  "CMakeFiles/specfaas_storage.dir/local_cache.cc.o.d"
  "libspecfaas_storage.a"
  "libspecfaas_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
