file(REMOVE_RECURSE
  "libspecfaas_baseline.a"
)
