file(REMOVE_RECURSE
  "CMakeFiles/specfaas_baseline.dir/baseline_controller.cc.o"
  "CMakeFiles/specfaas_baseline.dir/baseline_controller.cc.o.d"
  "libspecfaas_baseline.a"
  "libspecfaas_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specfaas_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
