# Empty dependencies file for specfaas_baseline.
# This may be replaced when dependencies are built.
